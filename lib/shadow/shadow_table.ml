(* Shadow table: the address -> shadow-cell index of every detector.

   Layout (doc/shadow.md has the full story).  The address space is
   carved into [block]-byte leaf pages reached through a flat
   two-level directory instead of a hash table:

     row index  = addr asr (block_bits + row_bits)
     page slot  = (addr asr block_bits) land (row_pages - 1)

   The root is a dense array of rows anchored at the first row ever
   touched; it grows geometrically toward whichever side a new
   address falls on, up to [max_window_rows].  Traces are untrusted
   (the varint decoder admits any 62-bit address), so rows that would
   stretch the window past that cap land in a spill hash table
   instead of forcing a multi-gigabyte root.  Directory arrays are
   bookkeeping, not shadow state: they are *not* counted in [bytes]
   (Table 2's hash column stays comparable across granularities); the
   [stats] accessor exposes them separately.

   A leaf page is a plain [Obj.t array] of slots.  An unoccupied slot
   holds the physically-unique [empty] sentinel, so occupied slots
   store the caller's value directly — no [Some] box per slot, no
   per-lookup hashing.  A one-entry MRU cache short-circuits the
   directory walk for the common same-page access run, and slot
   arrays released by [remove_range] are recycled through a small
   free-list pool (malloc/free-heavy workloads like dedup/pbzip2
   churn pages at a high rate).

   Adaptive granularity (paper Fig. 4): pages start with 4-byte slots
   and are rebuilt in place with byte slots the first time a sub-word
   access shows up.  The sub-word test is [size < 4 || addr land 3 <>
   0] *everywhere* — the previous implementation keyed fresh entries
   on [addr land 1] and masked even-but-unaligned (offset-2) accesses
   into word slots. *)

type mode = Fixed_bytes of int | Adaptive

(* The unique "no value here" sentinel.  A private heap block, so it
   can never be physically equal to a value a caller stores.  Slots
   are [Obj.t array] rather than ['a option array]: one uniform boxed
   representation, which also side-steps the flat-float-array trap. *)
let empty : Obj.t = Obj.repr (ref ())

type page = {
  mutable p_base : int;  (* first address covered, block-aligned *)
  mutable slot_bytes : int;  (* current granularity of this page *)
  mutable slots : Obj.t array;  (* block / slot_bytes slots *)
  mutable used : int;  (* occupied slots; 0 releases the page *)
}

(* Distinguished absences, compared physically. *)
let null_page : page =
  { p_base = min_int; slot_bytes = 1; slots = [||]; used = 0 }

let no_row : page array = [||]

(* Directory geometry: one row holds 2^row_bits page pointers.  With
   the default 128-byte block a row spans 64 KiB of address space, so
   the window cap covers 4 GiB before anything spills. *)
let row_bits = 9
let row_pages = 1 lsl row_bits
let max_window_rows = 1 lsl 16
let pool_cap = 64

type stats = {
  pages_live : int;
  pages_pooled : int;
  page_allocs : int;
  page_recycles : int;
  expansions : int;
  lookups : int;
  mru_hits : int;
  dir_bytes : int;
}

type 'a t = {
  block : int;
  block_bits : int;
  tmode : mode;
  account : Accounting.t option;
  mutable bytes : int;
  (* two-level directory *)
  mutable row_base : int;  (* row index of rows.(0) *)
  mutable rows : page array array;
  spill : (int, page array) Hashtbl.t;
  mutable spill_rows : int;
  (* MRU caches: last page and last row that answered a lookup *)
  mutable mru : page;
  mutable mru_row_idx : int;
  mutable mru_row : page array;
  (* free-list pools of released slot arrays, by length *)
  mutable pool_init : Obj.t array list;  (* length block / initial width *)
  mutable pool_byte : Obj.t array list;  (* length block *)
  mutable pool_init_n : int;
  mutable pool_byte_n : int;
  (* stats *)
  mutable pages_live : int;
  mutable page_allocs : int;
  mutable page_recycles : int;
  mutable expansions : int;
  mutable lookups : int;
  mutable mru_hits : int;
  mutable dir_words : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go i n = if n <= 1 then i else go (i + 1) (n lsr 1) in
  go 0 n

(* Slot width of a page that has not seen a sub-word access. *)
let initial_width = function Fixed_bytes g -> g | Adaptive -> 4

(* The one sub-word predicate (shared with ensure_granularity): a
   fresh page keyed by a non-word-aligned address starts at byte
   slots. *)
let default_gran t addr =
  match t.tmode with
  | Fixed_bytes g -> g
  | Adaptive -> if addr land 3 <> 0 then 1 else 4

let create ?(block = 128) ~mode ?account () =
  if not (is_pow2 block) then
    invalid_arg "Shadow_table.create: block not a power of two";
  let g = initial_width mode in
  if not (is_pow2 g) || g > block then
    invalid_arg "Shadow_table.create: bad slot size";
  {
    block;
    block_bits = log2 block;
    tmode = mode;
    account;
    bytes = 0;
    row_base = 0;
    rows = [||];
    spill = Hashtbl.create 8;
    spill_rows = 0;
    mru = null_page;
    mru_row_idx = min_int;
    mru_row = no_row;
    pool_init = [];
    pool_byte = [];
    pool_init_n = 0;
    pool_byte_n = 0;
    pages_live = 0;
    page_allocs = 0;
    page_recycles = 0;
    expansions = 0;
    lookups = 0;
    mru_hits = 0;
    dir_words = 0;
  }

let mode t = t.tmode
let block t = t.block

(* Accounting counts leaf pages only: header words (page record +
   array header + base/width bookkeeping) plus one word per slot. *)
let page_bytes nslots = 8 * (6 + nslots)

let account_delta t d =
  t.bytes <- t.bytes + d;
  match t.account with Some a -> Accounting.add_hash a d | None -> ()

let base_of t addr = addr land lnot (t.block - 1)

(* [asr], not [lsr]: neighbour probes can step below address zero and
   the directory must index sign-consistently. *)
let row_of t addr = addr asr (t.block_bits + row_bits)
let page_slot t addr = (addr asr t.block_bits) land (row_pages - 1)

(* ------------------------------------------------------------------ *)
(* Directory                                                          *)

let row_for t ri =
  if ri = t.mru_row_idx then t.mru_row
  else begin
    let i = ri - t.row_base in
    let r =
      if i >= 0 && i < Array.length t.rows then t.rows.(i)
      else if t.spill_rows = 0 then no_row
      else match Hashtbl.find_opt t.spill ri with Some r -> r | None -> no_row
    in
    if r != no_row then begin
      t.mru_row_idx <- ri;
      t.mru_row <- r
    end;
    r
  end

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* Place row [ri], growing or re-anchoring the root window as needed;
   rows outside the capped window go to the spill table. *)
let ensure_row t ri =
  let r = row_for t ri in
  if r != no_row then r
  else begin
    let fresh = Array.make row_pages null_page in
    t.dir_words <- t.dir_words + row_pages + 1;
    let len = Array.length t.rows in
    if len = 0 then begin
      t.rows <- Array.make 16 no_row;
      t.dir_words <- t.dir_words + 17;
      t.row_base <- ri;
      t.rows.(0) <- fresh
    end
    else begin
      let lo = t.row_base and hi = t.row_base + len in
      if ri >= lo && ri < hi then t.rows.(ri - lo) <- fresh
      else begin
        let new_lo = min lo ri and new_hi = max hi (ri + 1) in
        let span = new_hi - new_lo in
        if span > max_window_rows then begin
          Hashtbl.replace t.spill ri fresh;
          t.spill_rows <- t.spill_rows + 1;
          t.dir_words <- t.dir_words + 4 (* rough per-binding overhead *)
        end
        else begin
          let cap = min max_window_rows (max (next_pow2 span) (2 * len)) in
          (* leave the slack on the side we are growing toward *)
          let base' = if ri < lo then max (new_hi - cap) new_lo else new_lo in
          let base' = max base' (new_hi - cap) in
          let grown = Array.make cap no_row in
          Array.blit t.rows 0 grown (lo - base') len;
          t.dir_words <- t.dir_words + (cap - len);
          t.rows <- grown;
          t.row_base <- base';
          grown.(ri - base') <- fresh
        end
      end
    end;
    t.mru_row_idx <- ri;
    t.mru_row <- fresh;
    fresh
  end

(* Page lookup; [null_page] when absent. *)
let find_page t addr =
  t.lookups <- t.lookups + 1;
  let base = addr land lnot (t.block - 1) in
  if t.mru.p_base = base then begin
    t.mru_hits <- t.mru_hits + 1;
    t.mru
  end
  else begin
    let r = row_for t (row_of t addr) in
    if r == no_row then null_page
    else begin
      let p = r.(page_slot t addr) in
      if p != null_page then t.mru <- p;
      p
    end
  end

(* ------------------------------------------------------------------ *)
(* Page lifecycle                                                     *)

let alloc_slots t nslots =
  if nslots = t.block then (
    match t.pool_byte with
    | a :: rest ->
      t.pool_byte <- rest;
      t.pool_byte_n <- t.pool_byte_n - 1;
      t.page_recycles <- t.page_recycles + 1;
      a
    | [] ->
      t.page_allocs <- t.page_allocs + 1;
      Array.make nslots empty)
  else
    match t.pool_init with
    | a :: rest when Array.length a = nslots ->
      t.pool_init <- rest;
      t.pool_init_n <- t.pool_init_n - 1;
      t.page_recycles <- t.page_recycles + 1;
      a
    | _ ->
      t.page_allocs <- t.page_allocs + 1;
      Array.make nslots empty

(* Park an all-[empty] slot array in the free list. *)
let pool_slots t a =
  if Array.length a = t.block then begin
    if t.pool_byte_n < pool_cap then begin
      t.pool_byte <- a :: t.pool_byte;
      t.pool_byte_n <- t.pool_byte_n + 1
    end
  end
  else if t.pool_init_n < pool_cap then begin
    t.pool_init <- a :: t.pool_init;
    t.pool_init_n <- t.pool_init_n + 1
  end

let make_page ?gran t addr =
  let g = match gran with Some g -> g | None -> default_gran t addr in
  let nslots = t.block / g in
  let p =
    { p_base = base_of t addr; slot_bytes = g; slots = alloc_slots t nslots;
      used = 0 }
  in
  let r = ensure_row t (row_of t addr) in
  r.(page_slot t addr) <- p;
  t.mru <- p;
  t.pages_live <- t.pages_live + 1;
  account_delta t (page_bytes nslots);
  p

let drop_page t p =
  let r = row_for t (row_of t p.p_base) in
  r.(page_slot t p.p_base) <- null_page;
  if t.mru == p then t.mru <- null_page;
  t.pages_live <- t.pages_live - 1;
  account_delta t (-page_bytes (Array.length p.slots));
  (* used = 0 here, so the array is all-empty: safe to recycle *)
  pool_slots t p.slots;
  p.slots <- [||]

(* Rebuild a page with byte slots; every byte inherits its word's
   pointer. *)
let expand t p =
  let old = p.slots and oldg = p.slot_bytes in
  let slots = alloc_slots t t.block in
  Array.iteri
    (fun i v ->
      if v != empty then
        for j = i * oldg to ((i + 1) * oldg) - 1 do
          slots.(j) <- v
        done)
    old;
  account_delta t (page_bytes t.block - page_bytes (Array.length old));
  p.slots <- slots;
  p.used <- p.used * oldg;
  p.slot_bytes <- 1;
  t.expansions <- t.expansions + 1;
  Array.fill old 0 (Array.length old) empty;
  pool_slots t old

let slot_index p addr = (addr - p.p_base) / p.slot_bytes

(* ------------------------------------------------------------------ *)
(* Point operations                                                   *)

let ensure_granularity t ~addr ~size =
  match t.tmode with
  | Fixed_bytes _ -> ()
  | Adaptive ->
    let sub_word = size < 4 || addr land 3 <> 0 in
    if sub_word then begin
      let a = ref addr in
      let hi = addr + size in
      while !a < hi do
        (let p = find_page t !a in
         if p == null_page then ignore (make_page ~gran:1 t !a : page)
         else if p.slot_bytes > 1 then expand t p);
        a := base_of t !a + t.block
      done
    end

let slot_bounds t addr =
  let p = find_page t addr in
  let g = if p == null_page then default_gran t addr else p.slot_bytes in
  let lo = addr land lnot (g - 1) in
  (lo, lo + g)

let get t addr =
  let p = find_page t addr in
  if p == null_page then None
  else
    let v = p.slots.(slot_index p addr) in
    if v == empty then None else Some (Obj.obj v)

let set t addr v =
  let p =
    match find_page t addr with
    | p when p != null_page -> p
    | _ -> make_page t addr
  in
  (* keep the stored width honest for unaligned addresses — same
     predicate as ensure_granularity *)
  (match t.tmode with
  | Adaptive when p.slot_bytes > 1 && addr land 3 <> 0 -> expand t p
  | _ -> ());
  let i = slot_index p addr in
  if p.slots.(i) == empty then p.used <- p.used + 1;
  p.slots.(i) <- Obj.repr v

(* ------------------------------------------------------------------ *)
(* Range operations                                                   *)

(* Adaptive contract: ranges are byte-exact.  A boundary that falls
   inside a word slot refines that page to byte slots first —
   unconditionally when stamping, and only when the cut slot is
   occupied when clearing (cutting through an empty slot loses
   nothing).  Fixed mode keeps slot-cover semantics: the slot is the
   atomic unit and boundaries widen outward to it, because detectors
   free whole allocations, which need not be slot multiples. *)
let refine_boundary t b ~for_set =
  match t.tmode with
  | Fixed_bytes _ -> ()
  | Adaptive ->
    if b land 3 <> 0 then begin
      let p = find_page t b in
      if p == null_page then begin
        if for_set then ignore (make_page ~gran:1 t b : page)
      end
      else if
        p.slot_bytes > 1 && (for_set || p.slots.(slot_index p b) != empty)
      then expand t p
    end

let set_range t ~lo ~hi v =
  if hi > lo then begin
    refine_boundary t lo ~for_set:true;
    refine_boundary t hi ~for_set:true;
    let box = Obj.repr v in
    let a = ref lo in
    while !a < hi do
      let p =
        match find_page t !a with
        | p when p != null_page -> p
        | _ -> make_page t !a
      in
      let upper = min hi (p.p_base + t.block) in
      let i0 = slot_index p !a and i1 = slot_index p (upper - 1) in
      for i = i0 to i1 do
        if p.slots.(i) == empty then p.used <- p.used + 1;
        p.slots.(i) <- box
      done;
      a := p.p_base + t.block
    done
  end

let remove_range t ~lo ~hi =
  if hi > lo then begin
    refine_boundary t lo ~for_set:false;
    refine_boundary t hi ~for_set:false;
    let a = ref lo in
    while !a < hi do
      let p = find_page t !a in
      if p == null_page then a := base_of t !a + t.block
      else begin
        let upper = min hi (p.p_base + t.block) in
        let i0 = slot_index p !a and i1 = slot_index p (upper - 1) in
        for i = i0 to i1 do
          if p.slots.(i) != empty then begin
            p.slots.(i) <- empty;
            p.used <- p.used - 1
          end
        done;
        let next = p.p_base + t.block in
        if p.used = 0 then drop_page t p;
        a := next
      end
    done
  end

(* ------------------------------------------------------------------ *)
(* Bounded neighbour scans                                            *)

(* Both scans examine exactly [scan_limit] slots beyond the slot
   containing [addr], crossing page boundaries as needed.  An absent
   page contributes virtual empty slots at the initial width, so a
   released neighbour and a never-touched one answer identically —
   the dynamic detector's sharing decisions depend on that. *)
let scan_limit = 4

let prev_neighbor t addr =
  let slo, _ = slot_bounds t addr in
  let w = initial_width t.tmode in
  let rec back a remaining =
    if remaining <= 0 || a < 0 then None
    else
      let p = find_page t a in
      if p == null_page then begin
        let base = base_of t a in
        let nslots = ((a - base) / w) + 1 in
        if nslots >= remaining then None
        else back (base - 1) (remaining - nslots)
      end
      else begin
        let i = slot_index p a in
        let stop = max 0 (i - remaining + 1) in
        let rec look i =
          if i < stop then None
          else if p.slots.(i) != empty then begin
            let lo = p.p_base + (i * p.slot_bytes) in
            Some (lo, lo + p.slot_bytes, Obj.obj p.slots.(i))
          end
          else look (i - 1)
        in
        match look i with
        | Some _ as r -> r
        | None ->
          if stop = 0 then back (p.p_base - 1) (remaining - (i + 1)) else None
      end
  in
  back (slo - 1) scan_limit

let next_neighbor t addr =
  let _, shi = slot_bounds t addr in
  let w = initial_width t.tmode in
  let rec fwd a remaining =
    if remaining <= 0 then None
    else
      let p = find_page t a in
      if p == null_page then begin
        let base = base_of t a in
        let nslots = (base + t.block - a) / w in
        if nslots >= remaining then None
        else fwd (base + t.block) (remaining - nslots)
      end
      else begin
        let i = slot_index p a in
        let n = Array.length p.slots in
        let stop = min (n - 1) (i + remaining - 1) in
        let rec look i =
          if i > stop then None
          else if p.slots.(i) != empty then begin
            let lo = p.p_base + (i * p.slot_bytes) in
            Some (lo, lo + p.slot_bytes, Obj.obj p.slots.(i))
          end
          else look (i + 1)
        in
        match look i with
        | Some _ as r -> r
        | None ->
          if stop = n - 1 then
            fwd (p.p_base + t.block) (remaining - (stop - i + 1))
          else None
      end
  in
  fwd shi scan_limit

(* ------------------------------------------------------------------ *)
(* Group walk                                                         *)

(* Maximal run of consecutive slots starting at [addr]'s slot that
   all hold the same value (physical equality; the sentinel groups
   with itself, so an untouched run groups as [None]), clipped to the
   first slot boundary at or after [hi]. *)
let group t addr ~hi =
  let dflt = initial_width t.tmode in
  let start = find_page t addr in
  let g0 = if start == null_page then dflt else start.slot_bytes in
  let glo = addr land lnot (g0 - 1) in
  let v =
    if start == null_page then empty else start.slots.(slot_index start addr)
  in
  let round_up a g = (a + g - 1) land lnot (g - 1) in
  (* one page lookup per block; [cur] is always slot-aligned *)
  let rec walk cur =
    if cur >= hi then cur
    else
      let p = find_page t cur in
      if p == null_page then begin
        if v != empty then cur
        else
          let block_hi = base_of t cur + t.block in
          if block_hi >= hi then round_up hi dflt else walk block_hi
      end
      else begin
        let block_hi = p.p_base + t.block in
        let rec slots cur =
          if cur >= hi then round_up cur p.slot_bytes
          else if cur >= block_hi then walk cur
          else if p.slots.(slot_index p cur) == v then
            slots (cur + p.slot_bytes)
          else cur
        in
        slots cur
      end
  in
  let ghi = walk (glo + g0) in
  let value = if v == empty then None else Some (Obj.obj v) in
  (glo, max ghi (glo + g0), value)

(* ------------------------------------------------------------------ *)
(* Iteration and accounting                                           *)

let iter_page f p =
  let n = Array.length p.slots in
  for i = 0 to n - 1 do
    let v = p.slots.(i) in
    if v != empty then begin
      let lo = p.p_base + (i * p.slot_bytes) in
      f lo (lo + p.slot_bytes) (Obj.obj v)
    end
  done

let iter f t =
  let do_row r = Array.iter (fun p -> if p != null_page then iter_page f p) r in
  Array.iter (fun r -> if r != no_row then do_row r) t.rows;
  Hashtbl.iter (fun _ r -> do_row r) t.spill

let iter_range f t ~lo ~hi =
  if hi > lo then begin
    let a = ref lo in
    while !a < hi do
      let p = find_page t !a in
      if p == null_page then a := base_of t !a + t.block
      else begin
        let upper = min hi (p.p_base + t.block) in
        let i0 = slot_index p !a and i1 = slot_index p (upper - 1) in
        for i = i0 to i1 do
          let v = p.slots.(i) in
          if v != empty then begin
            let slo = p.p_base + (i * p.slot_bytes) in
            f slo (slo + p.slot_bytes) (Obj.obj v)
          end
        done;
        a := p.p_base + t.block
      end
    done
  end

let entry_count t = t.pages_live
let bytes t = t.bytes

let stats t =
  {
    pages_live = t.pages_live;
    pages_pooled = t.pool_init_n + t.pool_byte_n;
    page_allocs = t.page_allocs;
    page_recycles = t.page_recycles;
    expansions = t.expansions;
    lookups = t.lookups;
    mru_hits = t.mru_hits;
    dir_bytes = 8 * t.dir_words;
  }
