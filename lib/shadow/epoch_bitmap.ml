(* Same flat two-level directory as Shadow_table, specialised to
   fixed-size bitmap chunks (2 bits per address: read and write
   plane).  The directory persists across epochs: [reset] detaches
   the live chunks, zeroes them into a small pool, and the next epoch
   re-populates the same rows without re-hashing or re-allocating —
   the epoch cadence (every release/fork/join) is exactly the churn a
   free list pays off.

   Accounting counts live chunks only ([chunk_bytes + 16] each, the
   same charge the old hash-backed version used, so Table 2's bitmap
   column is unchanged); after [reset] the footprint reads zero.
   Directory overhead is exposed through [stats]. *)

type t = {
  block : int;  (* addresses covered per chunk *)
  block_bits : int;
  account : Accounting.t option;
  mutable bytes : int;
  (* two-level directory of chunks *)
  mutable row_base : int;
  mutable rows : Bytes.t array array;
  spill : (int, Bytes.t array) Hashtbl.t;
  mutable spill_rows : int;
  (* one-chunk cache: accesses cluster heavily *)
  mutable cached_base : int;
  mutable cached_chunk : Bytes.t;
  (* live chunk indices, for O(live) reset *)
  mutable live : int list;
  mutable live_n : int;
  (* zeroed chunks ready for reuse *)
  mutable pool : Bytes.t list;
  mutable pool_n : int;
  (* stats *)
  mutable chunk_allocs : int;
  mutable chunk_recycles : int;
  mutable resets : int;
  mutable dir_words : int;
}

(* 256 chunk pointers per row; with the default 1 KiB chunk coverage a
   row spans 256 KiB of address space. *)
let row_bits = 8
let row_chunks = 1 lsl row_bits
let max_window_rows = 1 lsl 16
let pool_cap = 64
let no_chunk = Bytes.empty
let no_row : Bytes.t array = [||]

type stats = {
  chunks_live : int;
  chunks_pooled : int;
  chunk_allocs : int;
  chunk_recycles : int;
  resets : int;
  dir_bytes : int;
}

let log2 n =
  let rec go i n = if n <= 1 then i else go (i + 1) (n lsr 1) in
  go 0 n

let create ?(block = 1024) ?account () =
  if block <= 0 || block land (block - 1) <> 0 then
    invalid_arg "Epoch_bitmap.create: block not a power of two";
  {
    block;
    block_bits = log2 block;
    account;
    bytes = 0;
    row_base = 0;
    rows = [||];
    spill = Hashtbl.create 8;
    spill_rows = 0;
    cached_base = min_int;
    cached_chunk = no_chunk;
    live = [];
    live_n = 0;
    pool = [];
    pool_n = 0;
    chunk_allocs = 0;
    chunk_recycles = 0;
    resets = 0;
    dir_words = 0;
  }

let account_delta t d =
  t.bytes <- t.bytes + d;
  match t.account with Some a -> Accounting.add_bitmap a d | None -> ()

(* 2 bits per address: bit 0 = read plane, bit 1 = write plane *)
let chunk_bytes t = t.block / 4

let row_of t addr = addr asr (t.block_bits + row_bits)
let row_slot t addr = (addr asr t.block_bits) land (row_chunks - 1)

let row_for t ri =
  let i = ri - t.row_base in
  if i >= 0 && i < Array.length t.rows then t.rows.(i)
  else if t.spill_rows = 0 then no_row
  else match Hashtbl.find_opt t.spill ri with Some r -> r | None -> no_row

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let ensure_row t ri =
  let r = row_for t ri in
  if r != no_row then r
  else begin
    let fresh = Array.make row_chunks no_chunk in
    t.dir_words <- t.dir_words + row_chunks + 1;
    let len = Array.length t.rows in
    if len = 0 then begin
      t.rows <- Array.make 16 no_row;
      t.dir_words <- t.dir_words + 17;
      t.row_base <- ri;
      t.rows.(0) <- fresh
    end
    else begin
      let lo = t.row_base and hi = t.row_base + len in
      if ri >= lo && ri < hi then t.rows.(ri - lo) <- fresh
      else begin
        let new_lo = min lo ri and new_hi = max hi (ri + 1) in
        let span = new_hi - new_lo in
        if span > max_window_rows then begin
          Hashtbl.replace t.spill ri fresh;
          t.spill_rows <- t.spill_rows + 1;
          t.dir_words <- t.dir_words + 4
        end
        else begin
          let cap = min max_window_rows (max (next_pow2 span) (2 * len)) in
          let base' = if ri < lo then max (new_hi - cap) new_lo else new_lo in
          let base' = max base' (new_hi - cap) in
          let grown = Array.make cap no_row in
          Array.blit t.rows 0 grown (lo - base') len;
          t.dir_words <- t.dir_words + (cap - len);
          t.rows <- grown;
          t.row_base <- base';
          grown.(ri - base') <- fresh
        end
      end
    end;
    fresh
  end

let chunk t addr =
  let base = addr land lnot (t.block - 1) in
  if base = t.cached_base then t.cached_chunk
  else begin
    let r = ensure_row t (row_of t addr) in
    let s = row_slot t addr in
    let c = r.(s) in
    let c =
      if c != no_chunk then c
      else begin
        let c =
          match t.pool with
          | c :: rest ->
            t.pool <- rest;
            t.pool_n <- t.pool_n - 1;
            t.chunk_recycles <- t.chunk_recycles + 1;
            c
          | [] ->
            t.chunk_allocs <- t.chunk_allocs + 1;
            Bytes.make (chunk_bytes t) '\000'
        in
        r.(s) <- c;
        t.live <- (addr asr t.block_bits) :: t.live;
        t.live_n <- t.live_n + 1;
        account_delta t (chunk_bytes t + 16);
        c
      end
    in
    t.cached_base <- base;
    t.cached_chunk <- c;
    c
  end

let plane_bit write = if write then 2 else 1

let orset c i m =
  let b = Char.code (Bytes.get c i) in
  if b lor m <> b then Bytes.set c i (Char.chr (b lor m))

(* Marking can cover whole shared granules, so it works byte-at-a-time
   on the chunk (4 addresses per byte) rather than per address. *)
let mark t ~write ~lo ~hi =
  let bit = plane_bit write in
  let pattern = bit * 0x55 in
  let addr = ref lo in
  while !addr < hi do
    let base = !addr land lnot (t.block - 1) in
    let c = chunk t !addr in
    let upper = min hi (base + t.block) in
    let off0 = !addr - base and off1 = upper - base in
    let head_end = min off1 ((off0 + 3) land lnot 3) in
    for o = off0 to head_end - 1 do
      orset c (o lsr 2) (bit lsl ((o land 3) * 2))
    done;
    let body_end = off1 land lnot 3 in
    let o = ref head_end in
    while !o < body_end do
      orset c (!o lsr 2) pattern;
      o := !o + 4
    done;
    for o = max body_end head_end to off1 - 1 do
      orset c (o lsr 2) (bit lsl ((o land 3) * 2))
    done;
    addr := upper
  done

let test t ~write addr =
  let base = addr land lnot (t.block - 1) in
  let c =
    if base = t.cached_base then t.cached_chunk
    else begin
      let r = row_for t (row_of t addr) in
      if r == no_row then no_chunk else r.(row_slot t addr)
    end
  in
  if c == no_chunk then false
  else begin
    let off = addr land (t.block - 1) in
    let i = off lsr 2 and shift = (off land 3) * 2 in
    let b = Char.code (Bytes.get c i) in
    b land (plane_bit write lsl shift) <> 0
  end

(* One lookup for the common whole-access probe: when [lo] and [hi]
   (inclusive) land in the same chunk — any access up to the block
   size that doesn't straddle a boundary — both bits come out of a
   single cached-chunk fetch; a straddling probe falls back to two
   independent tests. *)
let test_range t ~write ~lo ~hi =
  let base = lo land lnot (t.block - 1) in
  if hi land lnot (t.block - 1) <> base then
    test t ~write lo && test t ~write hi
  else begin
    let c =
      if base = t.cached_base then t.cached_chunk
      else begin
        let r = row_for t (row_of t lo) in
        if r == no_row then no_chunk else r.(row_slot t lo)
      end
    in
    if c == no_chunk then false
    else begin
      let bit = plane_bit write in
      let probe addr =
        let off = addr land (t.block - 1) in
        let i = off lsr 2 and shift = (off land 3) * 2 in
        Char.code (Bytes.get c i) land (bit lsl shift) <> 0
      in
      probe lo && (hi = lo || probe hi)
    end
  end

(* Epoch boundary: detach every live chunk from its row, zero it into
   the pool, and charge the footprint back down to zero.  The rows
   themselves stay, so the next epoch's marks pay no directory or
   allocation cost. *)
let reset t =
  List.iter
    (fun ci ->
      let r = row_for t (ci asr row_bits) in
      let s = ci land (row_chunks - 1) in
      let c = r.(s) in
      if c != no_chunk then begin
        r.(s) <- no_chunk;
        if t.pool_n < pool_cap then begin
          Bytes.fill c 0 (Bytes.length c) '\000';
          t.pool <- c :: t.pool;
          t.pool_n <- t.pool_n + 1
        end
      end)
    t.live;
  account_delta t (-t.live_n * (chunk_bytes t + 16));
  t.live <- [];
  t.live_n <- 0;
  t.resets <- t.resets + 1;
  t.cached_base <- min_int;
  t.cached_chunk <- no_chunk

let bytes t = t.bytes

let stats t =
  {
    chunks_live = t.live_n;
    chunks_pooled = t.pool_n;
    chunk_allocs = t.chunk_allocs;
    chunk_recycles = t.chunk_recycles;
    resets = t.resets;
    dir_bytes = 8 * t.dir_words;
  }
