(** The shadow-memory indexing structure of the paper's Figure 4.

    A flat two-level page directory maps addresses to leaf pages
    covering a [block]-byte aligned region (default m = 128 bytes):
    the root is a dense array of rows anchored at the first address
    touched, each row an array of page pointers, so the common lookup
    is two array indexes and no hashing (far-outlier rows fall back
    to a small spill table).  Each page holds an {e indexing array}
    of pointers to shadow values: it starts with [m/4] slots (word
    granularity, the common access pattern) and, in adaptive mode, is
    expanded to [m] slots (byte granularity) the first time a
    sub-word access touches the region.  The same structure serves
    the byte- and word-granularity detectors with a fixed slot size.
    Unoccupied slots hold a private sentinel, so occupied slots store
    the value unboxed; released pages are recycled through a free
    list.  See doc/shadow.md.

    Values are arbitrary; the dynamic-granularity detector stores
    shared cell records, so several slots (possibly in different
    pages) may point to one value.  All leaf-page size changes are
    reported to an {!Accounting} sink; directory overhead is
    bookkeeping and is reported through {!stats} instead. *)

type mode =
  | Fixed_bytes of int
      (** every page uses slots of exactly this many bytes (1 for the
          byte detector, 4 for the word detector) *)
  | Adaptive
      (** pages start at word slots and expand to byte slots when a
          sub-word access — smaller than a word or not word-aligned —
          shows up (paper §IV.B) *)

type 'a t

val create : ?block:int -> mode:mode -> ?account:Accounting.t -> unit -> 'a t
(** [block] must be a power of two and a multiple of the slot size
    (default 128). *)

val mode : 'a t -> mode
val block : 'a t -> int

val ensure_granularity : 'a t -> addr:int -> size:int -> unit
(** In adaptive mode, switch the pages covering the access to byte
    slots when the access is {e sub-word} — smaller than a word or not
    word-aligned — creating empty byte-granularity pages on demand.
    Call at the start of every access so that the slot bounds the
    detector sees are stable for the whole access.  No-op for accesses
    that cover whole aligned words, and in fixed mode. *)

val slot_bounds : 'a t -> int -> int * int
(** [slot_bounds t addr] is the address range [\[lo, hi)] of the slot
    that contains [addr], under the page's current granularity (or the
    granularity a fresh page would get — byte slots for any
    non-word-aligned address, the same predicate
    {!ensure_granularity} uses). *)

val get : 'a t -> int -> 'a option
(** Value of the slot containing the address, if any. *)

val set : 'a t -> int -> 'a -> unit
(** Point the slot containing the address at the value, creating the
    page on demand. *)

val set_range : 'a t -> lo:int -> hi:int -> 'a -> unit
(** Point the slots of [\[lo, hi)] at the value — how a vector clock
    is shared across a neighbourhood.  In adaptive mode the stamp is
    {e byte-exact}: a boundary falling inside a word slot refines
    that page to byte slots first, so no byte outside the range is
    touched.  In fixed mode the slot is the atomic unit and the stamp
    covers every slot intersecting the range (boundaries widen
    outward). *)

val remove_range : 'a t -> lo:int -> hi:int -> unit
(** Clear the range (used on [free]); pages left empty are dropped,
    their index bytes released and their arrays recycled.  Boundary
    handling follows the {!set_range} contract: byte-exact in
    adaptive mode (an occupied word slot cut by a boundary is refined
    first; bytes outside the range keep their value), widening to
    whole slots in fixed mode. *)

val prev_neighbor : 'a t -> int -> (int * int * 'a) option
(** [prev_neighbor t addr] is the nearest non-empty slot strictly
    before the slot of [addr] — [(lo, hi, v)] — looking through
    exactly [scan_limit = 4] slots, crossing page boundaries as
    needed (the "nearest predecessor that has a valid vector clock"
    of §III.A, bounded to the indexing neighbourhood).  Absent pages
    count as empty slots at the initial width, so a freed neighbour
    and a never-touched one answer identically. *)

val next_neighbor : 'a t -> int -> (int * int * 'a) option
(** Symmetric successor search. *)

val iter : (int -> int -> 'a -> unit) -> 'a t -> unit
(** [iter f t] applies [f lo hi v] to every non-empty slot. *)

val iter_range : (int -> int -> 'a -> unit) -> 'a t -> lo:int -> hi:int -> unit
(** [iter_range f t ~lo ~hi] applies [f slot_lo slot_hi v] to every
    non-empty slot intersecting [\[lo, hi)], in address order.  Slot
    bounds are the full slot, which may extend beyond the range. *)

val entry_count : 'a t -> int
(** Number of live leaf pages. *)

val bytes : 'a t -> int
(** Current index-structure footprint in bytes: live leaf pages only,
    as reported to the accounting sink.  Directory and free-list
    overhead is in {!stats}. *)

val group : 'a t -> int -> hi:int -> int * int * 'a option
(** [group t addr ~hi] is [(glo, ghi, v)]: the maximal run of
    consecutive slots starting at [addr]'s slot that all point to the
    same value [v] (physical equality) or are all empty ([None]),
    clipped to the first slot boundary at or after [hi].  This is the
    access-walk primitive of the dynamic-granularity detector: one
    page lookup per block instead of one per slot. *)

type stats = {
  pages_live : int;  (** live leaf pages (= {!entry_count}) *)
  pages_pooled : int;  (** slot arrays parked in the free list *)
  page_allocs : int;  (** slot arrays allocated fresh *)
  page_recycles : int;  (** slot arrays served from the free list *)
  expansions : int;  (** word-slot pages rebuilt at byte slots *)
  lookups : int;  (** page lookups *)
  mru_hits : int;  (** lookups answered by the one-entry MRU cache *)
  dir_bytes : int;
      (** root + row + spill overhead, not counted in {!bytes} *)
}

val stats : 'a t -> stats
