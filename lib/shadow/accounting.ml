type t = {
  mutable hash : int;
  mutable vc : int;
  mutable bitmap : int;
  mutable peak_total : int;
  mutable peak_hash : int;
  mutable peak_vc : int;
  mutable peak_bitmap : int;
  mutable live_vcs : int;
  mutable peak_vcs : int;
  mutable created_vcs : int;
  mutable bound_locations : int;
  mutable interned : int;
  mutable peak_interned : int;
}

let create () =
  {
    hash = 0;
    vc = 0;
    bitmap = 0;
    peak_total = 0;
    peak_hash = 0;
    peak_vc = 0;
    peak_bitmap = 0;
    live_vcs = 0;
    peak_vcs = 0;
    created_vcs = 0;
    bound_locations = 0;
    interned = 0;
    peak_interned = 0;
  }

let update_peaks t =
  let total = t.hash + t.vc + t.bitmap in
  if total > t.peak_total then t.peak_total <- total;
  if t.hash > t.peak_hash then t.peak_hash <- t.hash;
  if t.vc > t.peak_vc then t.peak_vc <- t.vc;
  if t.bitmap > t.peak_bitmap then t.peak_bitmap <- t.bitmap

let add_hash t d = t.hash <- t.hash + d; update_peaks t
let add_vc t d = t.vc <- t.vc + d; update_peaks t
let add_bitmap t d = t.bitmap <- t.bitmap + d; update_peaks t

(* the interned axis annotates how much of [vc] is deduplicated
   snapshot storage; it is not a fourth factor of [current_bytes] *)
let add_interned t d =
  t.interned <- t.interned + d;
  if t.interned > t.peak_interned then t.peak_interned <- t.interned

let vc_created t =
  t.live_vcs <- t.live_vcs + 1;
  t.created_vcs <- t.created_vcs + 1;
  if t.live_vcs > t.peak_vcs then t.peak_vcs <- t.live_vcs

let vc_freed t = t.live_vcs <- t.live_vcs - 1
let bind_locations t n = t.bound_locations <- t.bound_locations + n

let hash_bytes t = t.hash
let vc_bytes t = t.vc
let bitmap_bytes t = t.bitmap
let current_bytes t = t.hash + t.vc + t.bitmap
let peak_bytes t = t.peak_total
let peak_hash_bytes t = t.peak_hash
let peak_vc_bytes t = t.peak_vc
let peak_bitmap_bytes t = t.peak_bitmap
let interned_bytes t = t.interned
let peak_interned_bytes t = t.peak_interned
let live_vcs t = t.live_vcs
let peak_vcs t = t.peak_vcs
let total_vcs_created t = t.created_vcs

let avg_sharing t =
  if t.created_vcs = 0 then 1.0
  else float_of_int t.bound_locations /. float_of_int t.created_vcs

let reset t =
  t.hash <- 0;
  t.vc <- 0;
  t.bitmap <- 0;
  t.peak_total <- 0;
  t.peak_hash <- 0;
  t.peak_vc <- 0;
  t.peak_bitmap <- 0;
  t.live_vcs <- 0;
  t.peak_vcs <- 0;
  t.created_vcs <- 0;
  t.bound_locations <- 0;
  t.interned <- 0;
  t.peak_interned <- 0
