(** Offline sharded trace analysis on OCaml 5 domains.

    The trace is split by {!Dgrace_trace.Trace_shard} — accesses
    partitioned by hashed address line, sync events broadcast — and
    each shard replays on its own fresh detector in its own domain.
    Because (a) thread/lock vector clocks advance only on the
    broadcast sync events and (b) the dynamic detector's sharing
    decisions never cross an address line
    ({!Dgrace_detectors.Dynamic_granularity.share_granule}), every
    shard computes bit-identical happens-before state for the
    addresses it owns, and the merged race set equals the sequential
    one — the differential harness in [test/test_par.ml] locks this
    in.  See [doc/parallel.md].

    This module runs shards and reports raw per-shard outcomes; the
    deterministic merge into an engine summary lives in
    [Dgrace_core.Engine.replay_sharded] (the summary type is defined
    there). *)

open Dgrace_events
open Dgrace_detectors
module Budget := Dgrace_resilience.Budget

type mode =
  | Parallel  (** one domain per shard (the default) *)
  | Sequential
      (** shards run one after another on the calling domain — same
          results, and each shard's [busy_s] is then its uncontended
          analysis time, which is what the bench harness uses to
          measure the critical path on machines with fewer cores than
          shards *)

val shard_lane : int -> string
(** [shard_lane i] is ["shard<i>"] — the {!Dgrace_obs.Span} lane name
    shard [i] records on when {!analyze} is given a tracer.  The
    engine uses the same name to point the shard's detector at the
    same lane. *)

type shard_outcome = {
  index : int;
  detector : Detector.t;  (** the shard's detector, after [finish] *)
  tagged_races : (int * Report.t) list;
      (** races in detection order, tagged with the global trace
          offset of the event that surfaced them *)
  stop : (int * Budget.stop) option;
      (** budget stop and the global offset it happened at *)
  degraded : bool;
  events : int;  (** events delivered to this shard (incl. broadcasts) *)
  busy_s : float;  (** wall-clock the shard spent analysing *)
  recorder : Dgrace_obs.Recorder.t option;
      (** the shard's flight recorder (built by [recorder_for],
          flushed), for the engine's time-series merge *)
}

type result = {
  plan : Dgrace_trace.Trace_shard.t;
  outcomes : shard_outcome array;  (** indexed by shard *)
  split_s : float;  (** time spent routing the trace *)
  critical_path_s : float;
      (** max per-shard [busy_s]: the analysis time a machine with
          [shards] free cores would observe *)
  elapsed_s : float;  (** wall-clock including split and joins *)
}

val analyze :
  ?mode:mode ->
  ?batched:bool ->
  ?budget:Budget.t ->
  ?clock:Dgrace_obs.Clock.source ->
  ?progress:int * (int -> unit) ->
  ?tracer:Dgrace_obs.Span.t ->
  ?recorder_for:(int -> Detector.t -> Dgrace_obs.Recorder.t option) ->
  make:(int -> Detector.t) ->
  shards:int ->
  granule:int ->
  Event.t array ->
  result
(** [analyze ~make ~shards ~granule events] splits and replays.
    [batched] (default [true]) lets a shard whose detector has a
    [process_batch] fast path consume its stream as struct-of-arrays
    batches ({!Dgrace_trace.Trace_shard.batches_of}); the batch path
    engages only when no budget, recorder, progress heartbeat or
    tracer is in play, so per-event semantics are preserved whenever
    observable, and races are bit-identical either way (the
    differential harness covers both).
    [make i] must build a fresh detector for shard [i] (called once
    per shard, inside the shard's domain; suppression tables are
    immutable and safe to share).  [budget] applies {e per shard} with
    the sequential engine's semantics — shadow pressure degrades
    before stopping, event/deadline caps stop the shard.  [clock] is
    the time source the deadline check reads (default
    {!Dgrace_obs.Clock.ns}; a {!Dgrace_obs.Clock.ticker} makes it
    deterministic in tests).  [progress] is a global heartbeat over
    all delivered events across shards.

    [tracer] records the split, the join barrier, and welding on the
    ["main"] lane, and gives each shard a {!shard_lane} timeline with
    a ["shard.run"] span, a ["shard.finish"] span, a ["budget.stop"]
    instant if its budget fired, and a sampled ["detector.on_event"]
    timer.  [recorder_for i d] may attach a wall-clock flight recorder
    to shard [i]'s detector; it is ticked once per delivered event,
    flushed when the shard ends, and returned in the outcome.
    @raise Invalid_argument if [shards < 1] or [granule] is not a
    power of two. *)

val analyze_pipelined :
  ?slots:int ->
  ?clock:Dgrace_obs.Clock.source ->
  make:(int -> Detector.t) ->
  shards:int ->
  granule:int ->
  string ->
  result * Dgrace_trace.Trace_pipeline.stats
(** [analyze_pipelined ~make ~shards ~granule path] is the streaming
    pipelined counterpart of {!analyze} over a trace-v2 file: a
    sequential prepass folds the file through a
    {!Dgrace_trace.Trace_shard.planner} (straddle welds and broadcast
    counts — and any [Corrupt_trace] surfaces here, with exactly the
    sequential offset), then a decoder domain streams blocks through
    {!Dgrace_trace.Trace_pipeline} while the calling domain routes
    rows into one bounded {!Dgrace_trace.Batch_ring} of recycled
    batches per shard ([slots] buffers each, default
    {!Dgrace_trace.Trace_pipeline.default_slots}) and [shards]
    detector domains drain their rings via [process_batch] (or the
    tagged per-event fallback).  Routing and broadcast classes match
    {!Dgrace_trace.Trace_shard.split} exactly, so the merged outcome
    is bit-identical to {!analyze} on the same trace.  Per-event
    machinery (budgets, recorders, progress, tracing) is not offered
    here — callers needing it use the materialised {!analyze} path.
    [clock] feeds the rings' stall accounting; the summed stalls come
    back in the pipeline stats.
    @raise Invalid_argument if [shards < 1] or [granule] is not a
    power of two.
    @raise Dgrace_resilience.Error.Corrupt_trace as the sequential
    reader would, at the same offset. *)

(** {1 Merge helpers} *)

val merged_races : result -> Report.t list
(** All shards' races, stable-sorted by global trace offset.  Shards
    own disjoint address sets, so no two shards report at the same
    offset and this is exactly the sequential detection order. *)

val merged_stop : result -> (int * Budget.stop) option
(** The stop with the smallest global offset — the earliest point in
    the trace where any shard gave up — or [None] if every shard ran
    to end of stream. *)

val any_degraded : result -> bool
