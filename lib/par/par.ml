open Dgrace_events
open Dgrace_detectors
open Dgrace_shadow
module Budget = Dgrace_resilience.Budget
module Trace_shard = Dgrace_trace.Trace_shard
module Span = Dgrace_obs.Span
module Recorder = Dgrace_obs.Recorder

type mode = Parallel | Sequential

(* The tracing-lane naming convention shared with the engine: shard
   [i] records on lane ["shard<i>"], so a detector built with that
   lane as its tracer lands its phase timers beside the shard's own
   spans. *)
let shard_lane = Printf.sprintf "shard%d"

type shard_outcome = {
  index : int;
  detector : Detector.t;
  tagged_races : (int * Report.t) list;
  stop : (int * Budget.stop) option;
  degraded : bool;
  events : int;
  busy_s : float;
  recorder : Recorder.t option;
}

type result = {
  plan : Trace_shard.t;
  outcomes : shard_outcome array;
  split_s : float;
  critical_path_s : float;
  elapsed_s : float;
}

(* Raised from the per-shard budget guard; never escapes this module. *)
exception Stop of Budget.stop

(* Same budget semantics as the sequential engine, applied to one
   shard's stream: shadow pressure is answered by asking the detector
   to degrade one step at a time and only stops the shard once nothing
   more can be shed; event and deadline caps stop the shard outright.
   The deadline is polled every 256 events to keep the clock read off
   the hot path; [now_s] comes from the caller's clock source so
   deadline behaviour is mockable in tests. *)
let budget_guard (d : Detector.t) (b : Budget.t) ~degraded ~now_s ~t0 =
  let events = ref 0 in
  let over limit = Accounting.current_bytes d.account > limit in
  let rec shed limit =
    if over limit then
      match d.degrade with
      | Some step when step () ->
        degraded := true;
        shed limit
      | Some _ | None ->
        raise
          (Stop
             (Budget.Shadow_bytes
                { limit; bytes = Accounting.current_bytes d.account }))
  in
  fun () ->
    incr events;
    (match b.Budget.max_events with
     | Some limit when !events >= limit ->
       raise (Stop (Budget.Max_events { limit }))
     | Some _ | None -> ());
    (match b.Budget.max_shadow_bytes with
     | Some limit -> if over limit then shed limit
     | None -> ());
    match b.Budget.deadline_s with
    | Some limit_s when !events land 255 = 0 ->
      let elapsed_s = now_s () -. t0 in
      if elapsed_s > limit_s then
        raise (Stop (Budget.Deadline { limit_s; elapsed_s }))
    | Some _ | None -> ()

(* Replay one shard's stream on a fresh detector, tagging every new
   race report with the global trace offset of the event that produced
   it (the collector's tag mechanism: the offset is stamped before
   each dispatch, and batched detectors stamp it per row themselves).

   With [batched] and an eligible detector the stream is packed into
   struct-of-arrays batches and handed to [process_batch]; the packing
   happens before [busy_s] starts, mirroring how the split itself is
   outside the per-shard analysis time.  The batch path engages only
   when nothing per-event is requested — no budget guard, recorder,
   progress heartbeat or tracing lane — so those semantics are exactly
   the per-event loop's whenever they are observable. *)
let run_shard ~batched ~budget ~now_s ~progress ~lane ~recorder_for make
    (stream : (int * Event.t) array) index =
  let d : Detector.t = make index in
  let recorder =
    match recorder_for with Some f -> f index d | None -> None
  in
  let degraded = ref false in
  let want_guard =
    match budget with
    | Some b when not (Budget.is_unlimited b) -> true
    | Some _ | None -> false
  in
  let batches =
    if
      batched && (not want_guard) && recorder = None && lane = None
      && progress = None
    then
      match d.process_batch with
      | Some pb -> Some (pb, Trace_shard.batches_of stream)
      | None ->
        (* surfaced per shard; the merged registry sums them *)
        Dgrace_obs.Metrics.incr
          (Dgrace_obs.Metrics.counter d.metrics "engine.batch_fallback");
        None
    else None
  in
  let t0 = Unix.gettimeofday () in
  let guard =
    match budget with
    | Some b when want_guard ->
      Some (budget_guard d b ~degraded ~now_s ~t0:(now_s ()))
    | Some _ | None -> None
  in
  let delivered = ref 0 in
  let stop = ref None in
  (match batches with
   | Some (pb, batches) ->
     Array.iter
       (fun b ->
         pb b;
         delivered := !delivered + Dgrace_events.Batch.length b)
       batches
   | None ->
     (* The per-event dispatch is built once so the untraced path keeps
        the direct call; with a lane, dispatch goes through a sampled
        timer that attributes detector time on the shard's timeline. *)
     let on_event =
       match lane with
       | None -> d.on_event
       | Some buf ->
         (* one event in 64 is dispatched armed and timed; the shard's
            recorder tick stays exact (its merged final sample is
            observable output), so it lives in the delivery loop, not in
            the wrapper's [on_sample] *)
         Span.wrap_dispatch buf ~name:"detector.on_event" ~stride:64
           ~on_sample:(fun () -> ())
           d.on_event
     in
     let progress =
       match progress with None -> fun () -> () | Some f -> f
     in
     let last_off = ref (-1) in
     (match lane with Some buf -> Span.begin_span buf "shard.run" | None -> ());
     (try
        Array.iter
          (fun (off, ev) ->
            last_off := off;
            Report.Collector.set_tag d.collector off;
            on_event ev;
            incr delivered;
            (match recorder with Some r -> Recorder.tick r | None -> ());
            progress ();
            match guard with Some g -> g () | None -> ())
          stream
      with Stop s ->
        stop := Some (!last_off, s);
        (match lane with
         | Some buf -> Span.instant buf "budget.stop"
         | None -> ()));
     (match lane with Some buf -> Span.end_span buf "shard.run" | None -> ()));
  (match lane with
   | Some buf -> Span.span buf "shard.finish" d.finish
   | None -> d.finish ());
  (match recorder with Some r -> Recorder.flush r | None -> ());
  let busy_s = Unix.gettimeofday () -. t0 in
  {
    index;
    detector = d;
    tagged_races = Report.Collector.tagged_races d.collector;
    stop = !stop;
    degraded = !degraded;
    events = !delivered;
    busy_s;
    recorder;
  }

let analyze ?(mode = Parallel) ?(batched = true) ?budget
    ?(clock = Dgrace_obs.Clock.ns) ?progress ?tracer ?recorder_for ~make
    ~shards ~granule events =
  let now_s () = float_of_int (clock ()) *. 1e-9 in
  let t0 = Unix.gettimeofday () in
  let main = Option.map Span.main tracer in
  (match main with Some b -> Span.begin_span b "par.split" | None -> ());
  let plan = Trace_shard.split ~shards ~granule events in
  (match main with
   | Some b ->
     Span.end_span b "par.split";
     if plan.Trace_shard.straddling > 0 then Span.instant b "par.weld"
   | None -> ());
  (* Shard lanes are registered here, on the calling domain, so lane
     order (and the exported timeline layout) is by shard index, not
     by whichever domain wins the registration race. *)
  let lanes =
    match tracer with
    | None -> Array.make shards None
    | Some t -> Array.init shards (fun i -> Some (Span.lane t (shard_lane i)))
  in
  let split_s = Unix.gettimeofday () -. t0 in
  let progress_hook =
    match progress with
    | None -> None
    | Some (every, f) ->
      (* one global heartbeat across all shards: count every delivered
         event atomically and let whichever domain crosses a multiple
         of [every] fire the callback (serialised by a mutex so lines
         do not interleave) *)
      let n = Atomic.make 0 in
      let m = Mutex.create () in
      Some
        (fun () ->
          let v = Atomic.fetch_and_add n 1 + 1 in
          if v mod every = 0 then begin
            Mutex.lock m;
            (try f v with e -> Mutex.unlock m; raise e);
            Mutex.unlock m
          end)
  in
  let run i =
    run_shard ~batched ~budget ~now_s ~progress:progress_hook
      ~lane:lanes.(i) ~recorder_for make plan.shards.(i) i
  in
  let outcomes =
    match mode with
    | Sequential -> Array.init shards run
    | Parallel ->
      if shards = 1 then [| run 0 |]
      else begin
        let doms =
          Array.init (shards - 1) (fun i ->
              Domain.spawn (fun () -> run (i + 1)))
        in
        let first = run 0 in
        Array.append [| first |] (Array.map Domain.join doms)
      end
  in
  (match main with Some b -> Span.instant b "par.join" | None -> ());
  let critical_path_s =
    Array.fold_left (fun acc o -> Float.max acc o.busy_s) 0. outcomes
  in
  { plan; outcomes; split_s; critical_path_s;
    elapsed_s = Unix.gettimeofday () -. t0 }

(* ------------------------------------------------------------------ *)
(* Pipelined sharded replay of a v2 trace file (doc/trace.md): one
   decoder domain streams blocks into a ring, the calling domain
   routes rows into per-shard rings of recycled batches, and [shards]
   detector domains drain their rings through [process_batch].

   Two streaming passes replace [split]'s two in-memory passes: a
   sequential prepass folds the file once through a
   {!Trace_shard.planner} (straddle welds + broadcast counts — and,
   because it decodes the whole file, any [Corrupt_trace] surfaces
   here with exactly the sequential offset, so the routed pass below
   only ever sees a clean file), then the pipelined pass routes.
   Routing, broadcast classes and row offsets match [split] exactly,
   so the merged outcome is bit-identical to [analyze] — the engine
   falls back to the materialised path whenever budgets, recorders,
   progress or tracing need per-event semantics. *)

exception Router_stopped

let analyze_pipelined ?(slots = Dgrace_trace.Trace_pipeline.default_slots)
    ?(clock = Dgrace_obs.Clock.ns) ~make ~shards:k ~granule path =
  let module Pipeline = Dgrace_trace.Trace_pipeline in
  let module Ring = Dgrace_trace.Batch_ring in
  if k < 1 then invalid_arg "Par.analyze_pipelined: shards must be >= 1";
  let t0 = Unix.gettimeofday () in
  (* prepass: weld + counts (and the corruption check) *)
  let p = Trace_shard.planner ~granule () in
  Dgrace_trace.Trace_format_v2.fold_batches path
    (fun () b -> Trace_shard.plan_batch p b)
    ();
  let plan = Trace_shard.plan_stats p ~shards:k in
  let split_s = Unix.gettimeofday () -. t0 in
  (* per-shard rings and detector domains *)
  let rings = Array.init k (fun _ -> Ring.create ~slots ~clock ()) in
  let run_shard i =
    let ring = rings.(i) in
    let d : Detector.t = make i in
    let t0 = Unix.gettimeofday () in
    let delivered = ref 0 in
    (try
       let consume =
         match d.process_batch with
         | Some pb -> pb
         | None ->
           Dgrace_obs.Metrics.incr
             (Dgrace_obs.Metrics.counter d.metrics "engine.batch_fallback");
           fun b ->
             for r = 0 to Dgrace_events.Batch.length b - 1 do
               Report.Collector.set_tag d.collector b.Dgrace_events.Batch.off.(r);
               d.on_event (Dgrace_events.Batch.event b r)
             done
       in
       let rec drain () =
         match Ring.take ring with
         | None -> ()
         | Some b ->
           consume b;
           delivered := !delivered + Dgrace_events.Batch.length b;
           Ring.recycle ring b;
           drain ()
       in
       drain ()
     with exn ->
       (* unblock the router, then let Domain.join surface this *)
       Ring.abort ring;
       raise exn);
    d.finish ();
    let busy_s = Unix.gettimeofday () -. t0 in
    {
      index = i;
      detector = d;
      tagged_races = Report.Collector.tagged_races d.collector;
      stop = None;
      degraded = false;
      events = !delivered;
      busy_s;
      recorder = None;
    }
  in
  let doms = Array.init k (fun i -> Domain.spawn (fun () -> run_shard i)) in
  (* router state: one staging batch per shard, acquired lazily *)
  let staging : Dgrace_events.Batch.t option array = Array.make k None in
  let stage s =
    let fresh () =
      match Ring.acquire rings.(s) with
      | Some b ->
        staging.(s) <- Some b;
        b
      | None -> raise Router_stopped  (* that shard died; join reports why *)
    in
    match staging.(s) with
    | None -> fresh ()
    | Some b ->
      if Dgrace_events.Batch.is_full b then begin
        Ring.publish rings.(s) b;
        staging.(s) <- None;
        fresh ()
      end
      else b
  in
  let route (b : Dgrace_events.Batch.t) =
    let n = Dgrace_events.Batch.length b in
    for i = 0 to n - 1 do
      let kind = b.Dgrace_events.Batch.kind.(i) in
      if kind <= Dgrace_events.Batch.code_write then
        Dgrace_events.Batch.copy_row ~src:b i
          ~dst:(stage (Trace_shard.plan_shard p ~shards:k
                         b.Dgrace_events.Batch.b.(i)))
      else
        (* sync / alloc / free: broadcast, as [Trace_shard.split] does *)
        for s = 0 to k - 1 do
          Dgrace_events.Batch.copy_row ~src:b i ~dst:(stage s)
        done
    done
  in
  let finish_rings () =
    Array.iteri
      (fun s staged ->
        (match staged with
         | Some b when Dgrace_events.Batch.length b > 0 ->
           Ring.publish rings.(s) b
         | Some b -> Ring.restore rings.(s) b
         | None -> ());
        staging.(s) <- None;
        Ring.close rings.(s))
      staging
  in
  let pipe =
    try
      let pipe = Pipeline.feed ~slots ~clock path route in
      finish_rings ();
      pipe
    with exn ->
      (* router or decoder failed: seal the shard rings so every shard
         domain drains out, then join to surface the real error *)
      finish_rings ();
      Array.iter (fun d -> try ignore (Domain.join d) with _ -> ()) doms;
      raise exn
  in
  let outcomes = Array.map Domain.join doms in
  let critical_path_s =
    Array.fold_left (fun acc o -> Float.max acc o.busy_s) 0. outcomes
  in
  ( {
      plan;
      outcomes;
      split_s;
      critical_path_s;
      elapsed_s = Unix.gettimeofday () -. t0;
    },
    pipe )

let merged_stop r =
  Array.fold_left
    (fun acc o ->
      match (acc, o.stop) with
      | None, s | s, None -> s
      | Some (a, _), Some (b, _) when a <= b -> acc
      | Some _, s -> s)
    None r.outcomes

let any_degraded r = Array.exists (fun o -> o.degraded) r.outcomes

let merged_races r =
  Array.to_list r.outcomes
  |> List.concat_map (fun o -> o.tagged_races)
  |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd
