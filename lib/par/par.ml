open Dgrace_events
open Dgrace_detectors
open Dgrace_shadow
module Budget = Dgrace_resilience.Budget
module Trace_shard = Dgrace_trace.Trace_shard

type mode = Parallel | Sequential

type shard_outcome = {
  index : int;
  detector : Detector.t;
  tagged_races : (int * Report.t) list;
  stop : (int * Budget.stop) option;
  degraded : bool;
  events : int;
  busy_s : float;
}

type result = {
  plan : Trace_shard.t;
  outcomes : shard_outcome array;
  split_s : float;
  critical_path_s : float;
  elapsed_s : float;
}

(* Raised from the per-shard budget guard; never escapes this module. *)
exception Stop of Budget.stop

(* Same budget semantics as the sequential engine, applied to one
   shard's stream: shadow pressure is answered by asking the detector
   to degrade one step at a time and only stops the shard once nothing
   more can be shed; event and deadline caps stop the shard outright.
   The deadline is polled every 256 events to keep [gettimeofday] off
   the hot path. *)
let budget_guard (d : Detector.t) (b : Budget.t) ~degraded ~t0 =
  let events = ref 0 in
  let over limit = Accounting.current_bytes d.account > limit in
  let rec shed limit =
    if over limit then
      match d.degrade with
      | Some step when step () ->
        degraded := true;
        shed limit
      | Some _ | None ->
        raise
          (Stop
             (Budget.Shadow_bytes
                { limit; bytes = Accounting.current_bytes d.account }))
  in
  fun () ->
    incr events;
    (match b.Budget.max_events with
     | Some limit when !events >= limit ->
       raise (Stop (Budget.Max_events { limit }))
     | Some _ | None -> ());
    (match b.Budget.max_shadow_bytes with
     | Some limit -> if over limit then shed limit
     | None -> ());
    match b.Budget.deadline_s with
    | Some limit_s when !events land 255 = 0 ->
      let elapsed_s = Unix.gettimeofday () -. t0 in
      if elapsed_s > limit_s then
        raise (Stop (Budget.Deadline { limit_s; elapsed_s }))
    | Some _ | None -> ()

(* Replay one shard's stream on a fresh detector, tagging every new
   race report with the global trace offset of the event that produced
   it.  One event can surface several reports (a race dissolves the
   whole sharing group), so new reports are taken as the tail of the
   collector's detection-order list. *)
let run_shard ~budget ~progress make (stream : (int * Event.t) array) index =
  let d : Detector.t = make () in
  let degraded = ref false in
  let t0 = Unix.gettimeofday () in
  let guard =
    match budget with
    | Some b when not (Budget.is_unlimited b) ->
      Some (budget_guard d b ~degraded ~t0)
    | Some _ | None -> None
  in
  let tagged = ref [] in
  let reported = ref 0 in
  let delivered = ref 0 in
  let last_off = ref (-1) in
  let stop = ref None in
  (try
     Array.iter
       (fun (off, ev) ->
         last_off := off;
         d.on_event ev;
         incr delivered;
         progress ();
         let n = Report.Collector.count d.collector in
         if n > !reported then begin
           List.iteri
             (fun i r -> if i >= !reported then tagged := (off, r) :: !tagged)
             (Report.Collector.races d.collector);
           reported := n
         end;
         match guard with Some g -> g () | None -> ())
       stream
   with Stop s -> stop := Some (!last_off, s));
  d.finish ();
  let busy_s = Unix.gettimeofday () -. t0 in
  {
    index;
    detector = d;
    tagged_races = List.rev !tagged;
    stop = !stop;
    degraded = !degraded;
    events = !delivered;
    busy_s;
  }

let analyze ?(mode = Parallel) ?budget ?progress ~make ~shards ~granule events =
  let t0 = Unix.gettimeofday () in
  let plan = Trace_shard.split ~shards ~granule events in
  let split_s = Unix.gettimeofday () -. t0 in
  let progress_hook =
    match progress with
    | None -> fun () -> ()
    | Some (every, f) ->
      (* one global heartbeat across all shards: count every delivered
         event atomically and let whichever domain crosses a multiple
         of [every] fire the callback (serialised by a mutex so lines
         do not interleave) *)
      let n = Atomic.make 0 in
      let m = Mutex.create () in
      fun () ->
        let v = Atomic.fetch_and_add n 1 + 1 in
        if v mod every = 0 then begin
          Mutex.lock m;
          (try f v with e -> Mutex.unlock m; raise e);
          Mutex.unlock m
        end
  in
  let run i = run_shard ~budget ~progress:progress_hook make plan.shards.(i) i in
  let outcomes =
    match mode with
    | Sequential -> Array.init shards run
    | Parallel ->
      if shards = 1 then [| run 0 |]
      else begin
        let doms =
          Array.init (shards - 1) (fun i ->
              Domain.spawn (fun () -> run (i + 1)))
        in
        let first = run 0 in
        Array.append [| first |] (Array.map Domain.join doms)
      end
  in
  let critical_path_s =
    Array.fold_left (fun acc o -> Float.max acc o.busy_s) 0. outcomes
  in
  { plan; outcomes; split_s; critical_path_s;
    elapsed_s = Unix.gettimeofday () -. t0 }

let merged_stop r =
  Array.fold_left
    (fun acc o ->
      match (acc, o.stop) with
      | None, s | s, None -> s
      | Some (a, _), Some (b, _) when a <= b -> acc
      | Some _, s -> s)
    None r.outcomes

let any_degraded r = Array.exists (fun o -> o.degraded) r.outcomes

let merged_races r =
  Array.to_list r.outcomes
  |> List.concat_map (fun o -> o.tagged_races)
  |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd
