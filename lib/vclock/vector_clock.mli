(** Vector clocks (Fidge/Mattern logical time) over thread ids.

    A vector clock maps every thread id to the logical clock of that
    thread as last known to the clock's owner.  Thread ids index a
    growable array; entries beyond the stored length are implicitly 0,
    so clocks for executions with few threads stay small.

    The clock tracks its highest non-zero component, so {!leq},
    {!join}, {!equal} and {!fold} walk only the live prefix and
    {!max_tid_set} is O(1).  It also carries a generation counter that
    is bumped on every content change; {!Vc_intern} uses it to memoise
    interning of unchanged clocks.

    All mutating operations update the clock in place — detectors own
    their clocks and copy or intern explicitly where sharing would be
    unsound. *)

type t
(** A mutable vector clock. *)

val create : ?capacity:int -> unit -> t
(** A fresh clock with every component 0.  [capacity] pre-sizes the
    underlying array (default 4); it does not affect semantics. *)

val get : t -> int -> int
(** [get vc tid] is the component for [tid] (0 if never set). *)

val set : t -> int -> int -> unit
(** [set vc tid c] assigns component [tid], growing storage as needed.
    Writing the value a component already holds is a no-op (the
    generation counter is not bumped).
    @raise Invalid_argument on negative [tid] or [c]. *)

val tick : t -> int -> unit
(** [tick vc tid] increments component [tid] by one. *)

val size : t -> int
(** Number of stored components (indices [0 .. size-1] are backed by
    storage; all components at and beyond [size] are 0). *)

val copy : t -> t
(** An independent copy (with a fresh generation history). *)

val reset : t -> unit
(** [reset vc] zeroes every component without shrinking storage. *)

val assign : t -> t -> unit
(** [assign dst src] makes [dst] equal to [src] component-wise.  The
    destination's array is reused whenever [src]'s live prefix fits its
    capacity — regardless of the two arrays' exact lengths — so
    assigning into a pooled scratch clock allocates nothing in steady
    state. *)

val load : t -> int array -> int -> unit
(** [load dst payload len] makes [dst] equal to the clock whose
    components [0 .. len-1] are [payload.(0 .. len-1)] and 0 beyond —
    the inverse of snapshot interning.
    @raise Invalid_argument if [len > Array.length payload]. *)

val join : t -> t -> unit
(** [join dst src] sets [dst] to the element-wise maximum of [dst] and
    [src] — the vector-clock update performed by lock acquire/release
    and fork/join edges.  Only [src]'s live prefix is walked, and the
    generation counter is bumped only if [dst] actually changed. *)

val leq : t -> t -> bool
(** [leq a b] is the happens-before partial order: every component of
    [a] is [<=] the corresponding component of [b].  O(1) rejection
    when [a] has a non-zero component above [b]'s live prefix. *)

val equal : t -> t -> bool
(** Component-wise equality (trailing zeros ignored, so clocks of
    different capacities compare correctly). *)

val epoch_leq : Epoch.t -> t -> bool
(** [epoch_leq e vc] is [Epoch.clock e <= get vc (Epoch.tid e)] — the
    FastTrack O(1) ordering test between a last-access epoch and a
    thread clock.  {!Epoch.none} is ordered before everything. *)

val of_epoch : Epoch.t -> t
(** A vector clock that is 0 everywhere except the epoch's component. *)

val max_tid_set : t -> int
(** Largest tid with a non-zero component, or -1 if the clock is 0.
    O(1). *)

val heap_words : t -> int
(** Approximate heap footprint in machine words (array + record
    headers), used by the shadow-memory accounting of Table 2.  The
    generation/memo instrumentation fields are excluded: the figure
    models the flat C layout the paper costs. *)

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f vc acc] folds [f tid clock] over non-zero components in
    increasing tid order. *)

(** {2 Interning protocol}

    The remaining accessors exist for {!Vc_intern} and are not part of
    the clock's public semantics. *)

val raw : t -> int array
(** The backing array (indices above {!max_tid_set} are 0).  Callers
    must not mutate it; exposed so the interning arena can hash and
    compare the live prefix without copying. *)

val generation : t -> int
(** Content generation: bumped on every mutation that changed a
    component. *)

val memo_arena : t -> int
(** Arena uid of the last {!memo_store} (0 = none). *)

val memo_gen : t -> int
(** Generation at the time of the last {!memo_store}. *)

val memo_snap : t -> Obj.t
(** Snapshot stored by the last {!memo_store}; only meaningful when
    [memo_arena] and [memo_gen] both match. *)

val memo_store : t -> arena:int -> Obj.t -> unit
(** Record that this exact clock state was interned in [arena]. *)

val pp : Format.formatter -> t -> unit
(** Prints [<c0, c1, ...>] up to the last non-zero component. *)

val to_string : t -> string
