(** Hash-consed arena of immutable vector-clock snapshots.

    The paper's thesis is that neighbouring locations usually carry the
    same vector clock; the arena exploits the same redundancy in time:
    every place a detector "captures" a clock (read-shared inflation,
    DRD segment clocks, Inspector history entries, cell splits) interns
    it here and holds an O(1) refcounted share instead of a deep copy.

    A snapshot stores the clock's live prefix as a trimmed flat
    [int array] keyed by an FNV-style content hash.  Interning an
    unchanged mutable clock is memoised through the clock's generation
    stamp and skips even the rehash.  Payload arrays of dead snapshots
    are recycled through a per-length free list, so the steady-state
    capture path allocates nothing.

    Arenas are per-detector and therefore per-shard under the sharded
    analysis; they are not thread-safe.  See doc/vclock.md. *)

type t
(** An arena. *)

type snap
(** An immutable, refcounted snapshot owned by one arena.  A snapshot
    handed out by {!intern}/{!retain}/{!with_component} is owned by the
    caller and must be balanced by exactly one {!release}. *)

type stats = {
  s_live : int;  (** snapshots currently alive *)
  s_peak_live : int;
  s_bytes : int;  (** bytes held by live snapshots *)
  s_peak_bytes : int;
  s_pool_bytes : int;  (** bytes parked in the payload free list *)
  s_interns : int;  (** total {!intern} calls *)
  s_hits : int;  (** interns satisfied by an existing snapshot *)
  s_memo_hits : int;  (** hits that skipped hashing via the generation memo *)
  s_retains : int;  (** explicit O(1) shares *)
  s_releases : int;
  s_payload_allocs : int;
  s_payload_recycles : int;
}

val create : ?hash_consing:bool -> ?on_bytes:(int -> unit) -> unit -> t
(** A fresh arena.  [hash_consing:false] disables deduplication and the
    generation memo — every intern materialises a private snapshot,
    reproducing the legacy deep-copy behaviour (the [--no-vc-intern]
    escape hatch) while keeping the same ownership protocol.
    [on_bytes] is called with the signed byte delta whenever snapshot
    memory is allocated or freed, letting the caller mirror the arena
    into its {!Dgrace_shadow.Accounting} axes without a dependency
    cycle. *)

val intern : t -> Vector_clock.t -> snap
(** [intern t vc] returns a snapshot equal to [vc]'s current value,
    transferring one reference to the caller.  Re-interning a clock
    whose content is already live is O(1) via the generation memo;
    otherwise the content hash is looked up and only a genuinely new
    value allocates. *)

val retain : snap -> unit
(** Take one more reference — the O(1) replacement for a deep copy.
    @raise Invalid_argument if the snapshot was already freed. *)

val release : snap -> unit
(** Drop one reference; the last release returns the payload to the
    free list.  @raise Invalid_argument on refcount underflow. *)

val with_component : snap -> tid:int -> clock:int -> snap
(** Copy-on-write update: a snapshot equal to [s] except component
    [tid] holds [clock].  If the component already holds [clock] this
    is just {!retain}.  The caller owns the result and still owns
    [s]. *)

val refcount : snap -> int

val scratch : t -> Vector_clock.t
(** The arena's pooled staging clock: write a value into it (after
    {!Vector_clock.reset}) and {!intern} it — the allocation-free way
    to build snapshots such as the [Ep -> Vc] read inflation.  The
    scratch clock is shared; do not hold it across detector
    re-entry. *)

(** {2 Snapshot observations} — agree with the {!Vector_clock}
    operation of the same name on the interned value. *)

val get : snap -> int -> int
val max_tid_set : snap -> int
val equal : snap -> snap -> bool
val leq : snap -> snap -> bool

val leq_clock : snap -> Vector_clock.t -> bool
(** [leq_clock s vc] is [Vector_clock.leq (to_clock s) vc] without the
    copy — the common "is this captured clock ordered before the
    current thread?" race test. *)

val fold : (int -> int -> 'a -> 'a) -> snap -> 'a -> 'a
(** Over non-zero components in increasing tid order, matching
    {!Vector_clock.fold}. *)

val load_into : snap -> Vector_clock.t -> unit
(** Materialise the snapshot into a mutable clock. *)

val to_clock : snap -> Vector_clock.t
(** A fresh deep copy (tests and diagnostics; not on hot paths). *)

val stats : t -> stats

val snap_bytes : snap -> int
(** Accounted heap footprint of one snapshot (record + payload). *)
