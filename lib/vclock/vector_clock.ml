(* [last] caches the highest non-zero component (-1 when the clock is
   all-zero): [leq]/[join]/[equal] walk only the live prefix and
   [max_tid_set] is O(1).  [gen] counts content mutations so an arena
   can memoise "this exact clock state was already interned" (see
   Vc_intern); the memo fields belong to that protocol and carry no
   clock semantics. *)
type t = {
  mutable clocks : int array;
  mutable last : int;  (* invariant: clocks.(i) = 0 for all i > last *)
  mutable gen : int;
  mutable memo_arena : int;  (* Vc_intern arena uid, 0 = no memo *)
  mutable memo_gen : int;
  mutable memo_snap : Obj.t;
}

let no_memo = Obj.repr 0

let create ?(capacity = 4) () =
  let capacity = max capacity 1 in
  {
    clocks = Array.make capacity 0;
    last = -1;
    gen = 0;
    memo_arena = 0;
    memo_gen = -1;
    memo_snap = no_memo;
  }

let get vc tid = if tid < Array.length vc.clocks then vc.clocks.(tid) else 0

let grow vc needed =
  let cap = max needed (2 * Array.length vc.clocks) in
  let a = Array.make cap 0 in
  Array.blit vc.clocks 0 a 0 (Array.length vc.clocks);
  vc.clocks <- a

let rescan_last vc from =
  let i = ref from in
  while !i >= 0 && vc.clocks.(!i) = 0 do decr i done;
  vc.last <- !i

let set vc tid c =
  if tid < 0 then invalid_arg "Vector_clock.set: negative tid";
  if c < 0 then invalid_arg "Vector_clock.set: negative clock";
  if get vc tid <> c then begin
    if tid >= Array.length vc.clocks then grow vc (tid + 1);
    vc.clocks.(tid) <- c;
    if c <> 0 then begin
      if tid > vc.last then vc.last <- tid
    end
    else if tid = vc.last then rescan_last vc (tid - 1);
    vc.gen <- vc.gen + 1
  end

let tick vc tid = set vc tid (get vc tid + 1)
let size vc = Array.length vc.clocks

let copy vc =
  {
    clocks = Array.copy vc.clocks;
    last = vc.last;
    gen = 0;
    memo_arena = 0;
    memo_gen = -1;
    memo_snap = no_memo;
  }

let reset vc =
  if vc.last >= 0 then begin
    Array.fill vc.clocks 0 (vc.last + 1) 0;
    vc.last <- -1;
    vc.gen <- vc.gen + 1
  end

let assign dst src =
  let n = src.last + 1 in
  if n > Array.length dst.clocks then
    (* the live prefix does not fit: allocate; any existing array with
       enough capacity is reused below regardless of exact length *)
    dst.clocks <- Array.make (max n (2 * Array.length dst.clocks)) 0
  else if dst.last >= 0 then Array.fill dst.clocks 0 (dst.last + 1) 0;
  if n > 0 then Array.blit src.clocks 0 dst.clocks 0 n;
  dst.last <- src.last;
  dst.gen <- dst.gen + 1

let load dst src len =
  if len > Array.length src then
    invalid_arg "Vector_clock.load: length exceeds source";
  reset dst;
  if len > Array.length dst.clocks then grow dst len;
  if len > 0 then Array.blit src 0 dst.clocks 0 len;
  rescan_last dst (len - 1);
  dst.gen <- dst.gen + 1

let join dst src =
  let n = src.last + 1 in
  (* grow exactly to [n], never beyond: growing to amortised capacity
     here would let two clocks that repeatedly join each other (thread
     and lock clocks under contention) double one another's storage on
     every round — exponential blow-up *)
  if n > Array.length dst.clocks then begin
    let a = Array.make n 0 in
    Array.blit dst.clocks 0 a 0 (Array.length dst.clocks);
    dst.clocks <- a
  end;
  let changed = ref false in
  for i = 0 to n - 1 do
    if src.clocks.(i) > dst.clocks.(i) then begin
      dst.clocks.(i) <- src.clocks.(i);
      changed := true
    end
  done;
  if !changed then begin
    if src.last > dst.last then dst.last <- src.last;
    dst.gen <- dst.gen + 1
  end

(* top-level prefix walkers: a local [let rec] here would close over
   the operands and allocate a closure per call, off the
   allocation-free fast path *)
let rec prefix_leq (a : int array) (b : int array) i last =
  i > last || (a.(i) <= b.(i) && prefix_leq a b (i + 1) last)

let rec prefix_eq (a : int array) (b : int array) i last =
  i > last || (a.(i) = b.(i) && prefix_eq a b (i + 1) last)

let leq a b = a.last <= b.last && prefix_leq a.clocks b.clocks 0 a.last
let equal a b = a.last = b.last && prefix_eq a.clocks b.clocks 0 a.last

let epoch_leq e vc = Epoch.clock e <= get vc (Epoch.tid e)

let of_epoch e =
  let vc = create ~capacity:(Epoch.tid e + 1) () in
  set vc (Epoch.tid e) (Epoch.clock e);
  vc

let max_tid_set vc = vc.last

(* record header+field (2) + array header (1) + cells.  The [last]/
   [gen]/memo instrumentation fields are deliberately excluded: the
   accounting models the flat C layout the paper costs, and keeping the
   formula stable keeps Table 2 comparable across revisions. *)
let heap_words vc = 3 + Array.length vc.clocks

let fold f vc acc =
  let acc = ref acc in
  for i = 0 to vc.last do
    if vc.clocks.(i) <> 0 then acc := f i vc.clocks.(i) !acc
  done;
  !acc

let raw vc = vc.clocks
let generation vc = vc.gen
let memo_arena vc = vc.memo_arena
let memo_gen vc = vc.memo_gen
let memo_snap vc = vc.memo_snap

let memo_store vc ~arena snap =
  vc.memo_arena <- arena;
  vc.memo_gen <- vc.gen;
  vc.memo_snap <- snap

let pp ppf vc =
  Format.pp_print_string ppf "<";
  for i = 0 to vc.last do
    if i > 0 then Format.pp_print_string ppf ", ";
    Format.pp_print_int ppf vc.clocks.(i)
  done;
  Format.pp_print_string ppf ">"

let to_string vc = Format.asprintf "%a" pp vc
