(* Hash-consed arena of immutable vector-clock snapshots.

   A snapshot stores the live prefix of a clock as a flat, trimmed
   [int array] (last element non-zero).  Snapshots are refcounted:
   detectors retain one reference per place a clock is "captured"
   (read-shared history, segment clock, history entry), so capturing
   the same clock twice costs one refcount bump instead of a deep
   copy.  Payload arrays of dead snapshots are pooled per length class
   and recycled, keeping the steady-state access path allocation-free.

   The arena is single-domain by construction: the sharded analysis
   (lib/par) builds one detector — and therefore one arena — per
   shard, and gauges are max-merged afterwards like the shadow.* ones.
   Only the uid counter is global, hence atomic. *)

type t = {
  uid : int;  (* > 0; keyed into Vector_clock memo fields *)
  consing : bool;  (* false = legacy deep-copy mode (--no-vc-intern) *)
  table : (int, snap list) Hashtbl.t;  (* content hash -> bucket *)
  pool : (int, int array list) Hashtbl.t;  (* payload length -> spares *)
  pool_count : (int, int) Hashtbl.t;
  scratch : Vector_clock.t;  (* shared mutable staging clock *)
  on_bytes : (int -> unit) option;
  mutable live : int;
  mutable peak_live : int;
  mutable bytes : int;
  mutable peak_bytes : int;
  mutable pool_bytes : int;
  mutable interns : int;
  mutable hits : int;
  mutable memo_hits : int;
  mutable retains : int;
  mutable releases : int;
  mutable payload_allocs : int;
  mutable payload_recycles : int;
}

and snap = { payload : int array; hash : int; mutable refs : int; owner : t }

type stats = {
  s_live : int;
  s_peak_live : int;
  s_bytes : int;
  s_peak_bytes : int;
  s_pool_bytes : int;
  s_interns : int;
  s_hits : int;
  s_memo_hits : int;
  s_retains : int;
  s_releases : int;
  s_payload_allocs : int;
  s_payload_recycles : int;
}

let next_uid = Atomic.make 1

let create ?(hash_consing = true) ?on_bytes () =
  {
    uid = Atomic.fetch_and_add next_uid 1;
    consing = hash_consing;
    table = Hashtbl.create 256;
    pool = Hashtbl.create 16;
    pool_count = Hashtbl.create 16;
    scratch = Vector_clock.create ();
    on_bytes;
    live = 0;
    peak_live = 0;
    bytes = 0;
    peak_bytes = 0;
    pool_bytes = 0;
    interns = 0;
    hits = 0;
    memo_hits = 0;
    retains = 0;
    releases = 0;
    payload_allocs = 0;
    payload_recycles = 0;
  }

(* FNV-1a over the live prefix.  The 64-bit offset basis is truncated
   to fit OCaml's 63-bit int; multiplication wraps silently, which is
   fine — buckets always confirm with a full content compare. *)
let fnv_offset = 0x3bf29ce484222325
let fnv_prime = 0x100000001b3

let hash_prefix (a : int array) len =
  let h = ref fnv_offset in
  for i = 0 to len - 1 do
    h := (!h lxor Array.unsafe_get a i) * fnv_prime
  done;
  !h land max_int

(* snapshot record: header + 4 fields; payload: header + cells *)
let snap_words s = 5 + 1 + Array.length s.payload
let snap_bytes s = 8 * snap_words s

let account t d =
  t.bytes <- t.bytes + d;
  if t.bytes > t.peak_bytes then t.peak_bytes <- t.bytes;
  match t.on_bytes with Some f -> f d | None -> ()

(* top-level walkers: local [let rec] closures here would allocate on
   every call, right on the access fast path *)
let rec arr_eq_down (a : int array) (b : int array) i =
  i < 0 || (a.(i) = b.(i) && arr_eq_down a b (i - 1))

let rec arr_leq_up (a : int array) (b : int array) i n =
  i >= n || (a.(i) <= b.(i) && arr_leq_up a b (i + 1) n)

let matches_prefix s (raw : int array) len =
  Array.length s.payload = len && arr_eq_down s.payload raw (len - 1)

let pool_cap = 64

let alloc_payload t len =
  match Hashtbl.find_opt t.pool len with
  | Some (a :: rest) ->
    Hashtbl.replace t.pool len rest;
    Hashtbl.replace t.pool_count len (Hashtbl.find t.pool_count len - 1);
    t.pool_bytes <- t.pool_bytes - (8 * (1 + len));
    t.payload_recycles <- t.payload_recycles + 1;
    a
  | Some [] | None ->
    t.payload_allocs <- t.payload_allocs + 1;
    Array.make len 0

let recycle_payload t (a : int array) =
  let len = Array.length a in
  let n = match Hashtbl.find_opt t.pool_count len with Some n -> n | None -> 0 in
  if n < pool_cap then begin
    let spares = match Hashtbl.find_opt t.pool len with Some l -> l | None -> [] in
    Hashtbl.replace t.pool len (a :: spares);
    Hashtbl.replace t.pool_count len (n + 1);
    t.pool_bytes <- t.pool_bytes + (8 * (1 + len))
  end

let intern t vc =
  t.interns <- t.interns + 1;
  (* generation memo: an unchanged clock re-interns to the same live
     snapshot without touching the hash table.  The refs > 0 check
     makes stale memos (snapshot since released) sound. *)
  if
    t.consing
    && Vector_clock.memo_arena vc = t.uid
    && Vector_clock.memo_gen vc = Vector_clock.generation vc
    && (Obj.obj (Vector_clock.memo_snap vc) : snap).refs > 0
  then begin
    let s : snap = Obj.obj (Vector_clock.memo_snap vc) in
    t.hits <- t.hits + 1;
    t.memo_hits <- t.memo_hits + 1;
    s.refs <- s.refs + 1;
    s
  end
  else begin
    let raw = Vector_clock.raw vc in
    let len = Vector_clock.max_tid_set vc + 1 in
    let h = hash_prefix raw len in
    let bucket =
      if t.consing then
        match Hashtbl.find_opt t.table h with Some l -> l | None -> []
      else []
    in
    match List.find_opt (fun s -> matches_prefix s raw len) bucket with
    | Some s ->
      t.hits <- t.hits + 1;
      s.refs <- s.refs + 1;
      Vector_clock.memo_store vc ~arena:t.uid (Obj.repr s);
      s
    | None ->
      let payload = alloc_payload t len in
      Array.blit raw 0 payload 0 len;
      let s = { payload; hash = h; refs = 1; owner = t } in
      t.live <- t.live + 1;
      if t.live > t.peak_live then t.peak_live <- t.live;
      account t (snap_bytes s);
      if t.consing then begin
        Hashtbl.replace t.table h (s :: bucket);
        Vector_clock.memo_store vc ~arena:t.uid (Obj.repr s)
      end;
      s
  end

let retain s =
  if s.refs <= 0 then invalid_arg "Vc_intern.retain: snapshot already freed";
  s.refs <- s.refs + 1;
  s.owner.retains <- s.owner.retains + 1

let release s =
  if s.refs <= 0 then invalid_arg "Vc_intern.release: snapshot already freed";
  let t = s.owner in
  s.refs <- s.refs - 1;
  t.releases <- t.releases + 1;
  if s.refs = 0 then begin
    t.live <- t.live - 1;
    account t (-snap_bytes s);
    if t.consing then begin
      match Hashtbl.find_opt t.table s.hash with
      | Some l -> (
        match List.filter (fun x -> x != s) l with
        | [] -> Hashtbl.remove t.table s.hash
        | l' -> Hashtbl.replace t.table s.hash l')
      | None -> ()
    end;
    recycle_payload t s.payload
  end

let refcount s = s.refs
let scratch t = t.scratch
let max_tid_set s = Array.length s.payload - 1
let get s tid = if tid >= 0 && tid < Array.length s.payload then s.payload.(tid) else 0

let equal a b =
  a == b
  ||
  let n = Array.length a.payload in
  n = Array.length b.payload && arr_eq_down a.payload b.payload (n - 1)

(* payloads are trimmed (last element non-zero), so a longer payload
   can never be <= a shorter one *)
let leq a b =
  let n = Array.length a.payload in
  n <= Array.length b.payload && arr_leq_up a.payload b.payload 0 n

let rec payload_leq_clock (p : int array) vc i n =
  i >= n || (p.(i) <= Vector_clock.get vc i && payload_leq_clock p vc (i + 1) n)

let leq_clock s vc = payload_leq_clock s.payload vc 0 (Array.length s.payload)

let fold f s acc =
  let acc = ref acc in
  for i = 0 to Array.length s.payload - 1 do
    if s.payload.(i) <> 0 then acc := f i s.payload.(i) !acc
  done;
  !acc

let with_component s ~tid ~clock =
  if get s tid = clock then begin
    retain s;
    s
  end
  else begin
    let t = s.owner in
    Vector_clock.load t.scratch s.payload (Array.length s.payload);
    Vector_clock.set t.scratch tid clock;
    intern t t.scratch
  end

let load_into s vc = Vector_clock.load vc s.payload (Array.length s.payload)

let to_clock s =
  let vc = Vector_clock.create ~capacity:(max 1 (Array.length s.payload)) () in
  load_into s vc;
  vc

let stats t =
  {
    s_live = t.live;
    s_peak_live = t.peak_live;
    s_bytes = t.bytes;
    s_peak_bytes = t.peak_bytes;
    s_pool_bytes = t.pool_bytes;
    s_interns = t.interns;
    s_hits = t.hits;
    s_memo_hits = t.memo_hits;
    s_retains = t.retains;
    s_releases = t.releases;
    s_payload_allocs = t.payload_allocs;
    s_payload_recycles = t.payload_recycles;
  }
