let geomean = function
  | [] -> Float.nan
  | xs ->
    exp
      (List.fold_left (fun acc x -> acc +. log x) 0. xs
       /. float_of_int (List.length xs))

let mean = function
  | [] -> Float.nan
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
