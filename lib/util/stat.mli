(** Tiny numeric summaries shared by the bench harness and the CLI. *)

val geomean : float list -> float
(** Geometric mean; [nan] on the empty list (matches the bench
    tables' "no data" rendering). *)

val mean : float list -> float
(** Arithmetic mean; [nan] on the empty list. *)
