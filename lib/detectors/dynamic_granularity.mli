(** The paper's contribution: FastTrack with dynamic detection
    granularity (§III, Figures 2 and 3).

    Detection starts at access granularity and grows by {e sharing} one
    vector clock among neighbouring locations whose clocks are equal.
    Read and write locations are shadowed in separate planes and only
    same-access-type clocks are shared.  Each shared clock is a {e
    cell} covering a contiguous address range; the sharing state
    machine ({!Share_state}) allows at most two sharing decisions per
    location lifetime:

    - on the first access a cell is created in an [Init] state and may
      be {e temporarily} shared with an [Init] neighbour carrying the
      same clock (the initialisation approximation);
    - on the second-epoch access the cell is split and the {e firm}
      decision is made: join a [Shared]/[Private] neighbour with an
      equal clock, or stay private;
    - a race dissolves the sharing group: every member is reported (the
      paper's x264 case) and parked in the absorbing [Race] state.

    Two ablation switches reproduce Table 5:
    [~init_sharing:false] disables the temporary first-epoch sharing
    (higher peak memory, same precision); [~init_state:false] removes
    the Init state entirely, making the single sharing decision at
    first access (the configuration the paper shows produces false
    alarms). *)

open Dgrace_events

val share_granule : int
(** Clock sharing never crosses an aligned [share_granule]-byte line
    (4096).  Every sharing site — first-access adoption, the firm
    second-epoch decision, resharing, and forced coarsening under a
    shadow budget — refuses a merge whose resulting span would straddle
    a line.  The detector's verdict for a line therefore depends only on
    the accesses that touch it plus the global sync-event order, which
    is what lets {!Dgrace_par} shard a trace by address line and replay
    the shards in parallel bit-identically (doc/parallel.md).  A cell
    created by a single line-straddling access may span two lines; such
    a cell simply never coalesces further. *)

val create :
  ?sharing:bool ->
  ?init_state:bool ->
  ?init_sharing:bool ->
  ?reshare_after:int ->
  ?write_guided_reads:bool ->
  ?index:Dgrace_shadow.Shadow_table.mode ->
  ?name:string ->
  ?suppression:Suppression.t ->
  ?vc_intern:bool ->
  ?page_cluster:bool ->
  ?tracer:Dgrace_obs.Span.buf ->
  unit ->
  Detector.t
(** The paper's tool is one implementation serving all three
    granularities (Fig. 3 keeps read and write locations separately in
    every mode); so is this one:

    - [~sharing:false] with the default adaptive index is the {e byte}
      detector: one clock per access footprint (split on partial
      overlap), byte-resolution indexing on sub-word accesses, no
      coalescing.  Its vector-clock population matches the word
      detector's on word-access programs, as in the paper's Table 3.
    - [~sharing:false ~index:(Fixed_bytes 4)] is the {e word} detector:
      the same machinery with addresses masked to word granules (hence
      the x264 masking and ffmpeg false alarm of §V.A).
    - the default is the full dynamic-granularity detector.

    The two §VII "future work" extensions are also implemented, both
    off by default: [~reshare_after:k] re-opens the sharing decision
    for a private clock after [k] consecutive steady-state accesses
    whose clock matched a settled neighbour's (granularity keeps
    adapting after the second epoch), and [~write_guided_reads:true]
    lets a read location with no read history of its own join a
    neighbour when their {e write} clocks are already shared.

    [~vc_intern:false] disables hash-consing in the read-shared
    snapshot arena (the [--no-vc-intern] escape hatch): every capture
    materialises a private snapshot, reproducing the legacy deep-copy
    memory behaviour with identical race verdicts.

    [~page_cluster:false] disables page-clustered batch application
    (the [--no-page-cluster] escape hatch): [process_batch] then walks
    rows strictly in order.  With clustering on (the default), access
    rows are grouped by aligned share-granule line and applied
    line-by-line — sync rows, frees and line-straddling accesses act
    as in-order barriers — which is report- and stats-identical to row
    order (doc/shadow.md gives the argument; [cluster.rows] /
    [cluster.pages] / [cluster.barriers] count the grouping).

    [~tracer:buf] registers sampled per-phase timers
    ([phase.shadow_lookup], [phase.vc_check], [phase.granularity]) on
    the given tracing lane.  They only run on events the lane's
    dispatch wrapper arms ({!Dgrace_obs.Span.wrap_dispatch}); without a
    tracer the same sites call {!Dgrace_obs.Span.disabled} stand-ins,
    a load and a branch each. *)
