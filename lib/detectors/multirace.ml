open Dgrace_events

(* potential-only counters, attached to the detector records we make *)
let registry : (Detector.t * int ref) list ref = ref []

let potential_only d =
  match List.find_opt (fun (d', _) -> d' == d) !registry with
  | Some (_, r) -> !r
  | None -> 0

let create ?(granularity = 4) ?(suppression = Suppression.empty) () =
  let hb = Djit.create ~granularity ~suppression:Suppression.empty () in
  let ls = Lockset.create ~granularity ~suppression:Suppression.empty () in
  let collector = Report.Collector.create ~suppression () in
  let potential = ref 0 in
  let finished = ref false in
  let finish () =
    if not !finished then begin
      finished := true;
      hb.finish ();
      ls.finish ();
      (* confirmed = happens-before races on discipline-violating
         locations; everything else LockSet flagged is potential-only *)
      let ls_granules =
        List.map
          (fun (r : Report.t) -> (r.granule_lo, r.granule_hi))
          (Detector.races ls)
      in
      let overlaps (r : Report.t) =
        List.exists (fun (lo, hi) -> r.granule_lo < hi && lo < r.granule_hi)
          ls_granules
      in
      let confirmed = List.filter overlaps (Detector.races hb) in
      List.iter
        (fun r -> ignore (Report.Collector.add collector r : bool))
        confirmed;
      potential := Detector.race_count ls - Report.Collector.count collector
    end
  in
  let d =
    {
      Detector.name = "multirace";
      on_event =
        (fun ev ->
          hb.on_event ev;
          ls.on_event ev);
      process_batch = None;
      finish;
      collector;
      account = hb.account;
      stats = hb.stats;
      metrics = hb.metrics;
      transitions = hb.transitions;
      degrade = hb.degrade;
    }
  in
  registry := (d, potential) :: !registry;
  d
