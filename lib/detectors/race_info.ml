open Dgrace_vclock
open Dgrace_events

let current ~tid ~kind ~clock ~loc : Report.endpoint = { tid; kind; clock; loc }

let of_write ~w ~loc : Report.endpoint =
  { tid = Epoch.tid w; kind = Event.Write; clock = Epoch.clock w; loc }

let conflicting_tid v ~against =
  Vector_clock.fold
    (fun tid clock found ->
      if found >= 0 then found
      else if clock > Vector_clock.get against tid then tid
      else found)
    v (-1)

let snap_conflicting_tid s ~against =
  Vc_intern.fold
    (fun tid clock found ->
      if found >= 0 then found
      else if clock > Vector_clock.get against tid then tid
      else found)
    s (-1)

let of_read_state r ~against ~loc : Report.endpoint =
  match r with
  | Read_state.No_reads -> { tid = -1; kind = Event.Read; clock = 0; loc }
  | Read_state.Ep e ->
    { tid = Epoch.tid e; kind = Event.Read; clock = Epoch.clock e; loc }
  | Read_state.Vc s ->
    let tid = snap_conflicting_tid s ~against in
    let tid = if tid >= 0 then tid else Vc_intern.max_tid_set s in
    { tid; kind = Event.Read; clock = Vc_intern.get s (max tid 0); loc }
