(** The vector-clock sharing state machine of the paper's Figure 2.

    Every read or write shadow cell carries one of these states.  The
    [Init] states cover the location's first epoch (the initialisation
    approximation); the firm sharing decision is made at the second
    epoch access; [Race] is absorbing.  The machine is kept as a pure
    transition function so every arrow of Figure 2 can be unit-tested
    independently of the detector. *)

type t =
  | Init_private
      (** first epoch, no neighbour shares the clock yet
          (Fig. 2 "1st-Epoch-Private") *)
  | Init_shared
      (** first epoch, clock temporarily shared with an [Init]
          neighbour (Fig. 2 "1st-Epoch-Shared") *)
  | Shared  (** firm decision: clock shared with a neighbour *)
  | Private  (** firm decision: private clock *)
  | Race  (** a race was detected on the location; absorbing *)

(** The stimuli of Figure 2, from the perspective of one location [L]. *)
type stimulus =
  | First_access of { matching_init_neighbor : bool }
      (** initial transition; only valid from no state (we encode this
          by stepping from [Init_private]) *)
  | Init_neighbor_matched
      (** a neighbouring location was initiated with the same clock
          while [L] is still in its first epoch *)
  | Second_epoch_access of { matching_settled_neighbor : bool }
      (** the second-epoch access: [matching_settled_neighbor] is true
          when a neighbour in [Shared]/[Private] carries an equal
          clock *)
  | Adopted_by_neighbor
      (** another location's second-epoch decision picked [L]'s clock:
          [Private] becomes [Shared] *)
  | Race_on_l  (** a data race was detected on [L] *)
  | Sharing_dissolved
      (** the clock [L] was sharing raced on another member; [L]
          receives a private clock in state [Race] *)

val initial : matching_init_neighbor:bool -> t
(** State after the first access ([Init_shared] if an [Init] neighbour
    already carries the same clock, else [Init_private]). *)

val step : t -> stimulus -> t option
(** [step s x] is the successor state, or [None] when Figure 2 has no
    such arrow (the detector treats [None] as a programming error). *)

val is_init : t -> bool
val is_settled : t -> bool
(** [Shared] or [Private] — eligible as a second-epoch sharing target. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Telemetry support}

    A stable enumeration of the states so transition counters can be
    kept in a flat matrix (see {!Dgrace_obs.State_matrix}). *)

val index : t -> int
(** [Init_private = 0], [Init_shared = 1], [Private = 2], [Shared = 3],
    [Race = 4]. *)

val n_states : int

val names : string array
(** Display names in {!index} order (same spelling as {!pp}). *)
