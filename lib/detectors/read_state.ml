open Dgrace_vclock

type t = No_reads | Ep of Epoch.t | Vc of Vc_intern.snap

let equal a b =
  match (a, b) with
  | No_reads, No_reads -> true
  | Ep e1, Ep e2 -> Epoch.equal e1 e2
  | Vc s1, Vc s2 -> Vc_intern.equal s1 s2
  | (No_reads | Ep _ | Vc _), _ -> false

let leq r tvc =
  match r with
  | No_reads -> true
  | Ep e -> Vector_clock.epoch_leq e tvc
  | Vc s -> Vc_intern.leq_clock s tvc

let same_epoch r e =
  match r with Ep e' -> Epoch.equal e e' | No_reads | Vc _ -> false

let update ~intern r ~tid ~tvc =
  let here = Epoch.make ~tid ~clock:(Vector_clock.get tvc tid) in
  match r with
  | No_reads -> Ep here
  | Ep e ->
    if Vector_clock.epoch_leq e tvc then Ep here
    else begin
      (* read-shared: inflate to a snapshot holding both reads, staged
         through the arena's pooled scratch clock — no allocation on
         the hot path *)
      let v = Vc_intern.scratch intern in
      Vector_clock.reset v;
      Vector_clock.set v (Epoch.tid e) (Epoch.clock e);
      Vector_clock.set v tid (Epoch.clock here);
      Vc (Vc_intern.intern intern v)
    end
  | Vc s ->
    let s' = Vc_intern.with_component s ~tid ~clock:(Epoch.clock here) in
    Vc_intern.release s;
    Vc s'

let release = function
  | No_reads | Ep _ -> ()
  | Vc s -> Vc_intern.release s

let bytes = function
  | No_reads | Ep _ -> 0
  | Vc s -> Vc_intern.snap_bytes s

let pp ppf = function
  | No_reads -> Format.pp_print_string ppf "r:-"
  | Ep e -> Format.fprintf ppf "r:%a" Epoch.pp e
  | Vc s -> Format.fprintf ppf "r:%a" Vector_clock.pp (Vc_intern.to_clock s)
