open Dgrace_events

type region = {
  mutable rate_log2 : int;  (* sample 1 access in 2^rate_log2 *)
  mutable analysed : int;  (* analysed accesses since last decay *)
  mutable counter : int;  (* deterministic sampling coin *)
}

type state = {
  floor_log2 : int;
  decay_every : int;
  regions : (string, region) Hashtbl.t;
  inner : Detector.t;
  stats : Run_stats.t;
}

let region_of st loc =
  match Hashtbl.find_opt st.regions loc with
  | Some r -> r
  | None ->
    let r = { rate_log2 = 0; analysed = 0; counter = 0 } in
    Hashtbl.replace st.regions loc r;
    r

(* deterministic sampling: the first of every 2^rate_log2 accesses *)
let sampled st r =
  let hit = r.counter land ((1 lsl r.rate_log2) - 1) = 0 in
  r.counter <- r.counter + 1;
  if hit then begin
    r.analysed <- r.analysed + 1;
    if r.analysed >= st.decay_every && r.rate_log2 < st.floor_log2 then begin
      r.analysed <- 0;
      r.rate_log2 <- r.rate_log2 + 1
    end
  end;
  hit

let create ?(floor_rate = 0.02) ?(decay_every = 64)
    ?(suppression = Suppression.empty) () =
  if floor_rate <= 0. || floor_rate > 1. then
    invalid_arg "Literace_sampling.create: floor_rate must be in (0, 1]";
  if decay_every < 1 then invalid_arg "Literace_sampling.create: decay_every < 1";
  let floor_log2 =
    int_of_float (ceil (-.log floor_rate /. log 2.))
  in
  let inner =
    Dynamic_granularity.create ~sharing:false ~name:"ft-byte" ~suppression ()
  in
  let st =
    {
      floor_log2;
      decay_every;
      regions = Hashtbl.create 64;
      inner;
      stats = Run_stats.create ();
    }
  in
  let on_event ev =
    match ev with
    | Event.Access { kind; loc; _ } ->
      st.stats.accesses <- st.stats.accesses + 1;
      if kind = Event.Write then st.stats.writes <- st.stats.writes + 1
      else st.stats.reads <- st.stats.reads + 1;
      let r = region_of st loc in
      if sampled st r then st.inner.on_event ev
      else
        (* skipped entirely: LiteRace's unsoundness, counted here *)
        st.stats.same_epoch <- st.stats.same_epoch + 1
    | Event.Acquire _ | Event.Release _ | Event.Fork _ | Event.Join _
    | Event.Thread_exit _ ->
      st.stats.sync_ops <- st.stats.sync_ops + 1;
      st.inner.on_event ev
    | Event.Alloc _ ->
      st.stats.allocs <- st.stats.allocs + 1;
      st.inner.on_event ev
    | Event.Free _ ->
      st.stats.frees <- st.stats.frees + 1;
      st.inner.on_event ev
  in
  {
    Detector.name = "literace-sampling";
    on_event;
    process_batch = None;
    finish = st.inner.finish;
    collector = st.inner.collector;
    account = st.inner.account;
    stats = st.stats;
    metrics = st.inner.metrics;
    transitions = st.inner.transitions;
    degrade = st.inner.degrade;
  }
