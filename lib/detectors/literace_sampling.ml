open Dgrace_events
module Metrics = Dgrace_obs.Metrics

type region = {
  mutable rate_log2 : int;  (* sample 1 access in 2^rate_log2 *)
  mutable analysed : int;  (* analysed accesses since last decay *)
  mutable counter : int;  (* deterministic sampling coin *)
}

type state = {
  floor_log2 : int;
  decay_every : int;
  regions : (string, region) Hashtbl.t;
  inner : Detector.t;
  stats : Run_stats.t;
  analysed_c : Metrics.counter;
  skipped_c : Metrics.counter;
}

let check_floor_rate floor_rate =
  if floor_rate <= 0. || floor_rate > 1. then
    invalid_arg "Literace_sampling: floor_rate must be in (0, 1]"

(* The deepest halving that stays at or above the floor:
   2^-floor_log2 >= floor_rate.  [floor], not [ceil] — rounding the
   exponent up once put the effective rate a whole halving *below*
   the documented floor (0.02 became 1/64 = 1.56%).  The post-check
   guards against the log ratio landing an ulp high. *)
let floor_log2_of_rate floor_rate =
  let k = max 0 (int_of_float (Float.floor (-.log floor_rate /. log 2.))) in
  if 1. /. float_of_int (1 lsl k) < floor_rate then max 0 (k - 1) else k

let effective_floor ~floor_rate =
  check_floor_rate floor_rate;
  1. /. float_of_int (1 lsl floor_log2_of_rate floor_rate)

let region_of st loc =
  match Hashtbl.find_opt st.regions loc with
  | Some r -> r
  | None ->
    let r = { rate_log2 = 0; analysed = 0; counter = 0 } in
    Hashtbl.replace st.regions loc r;
    r

(* deterministic sampling: the first of every 2^rate_log2 accesses *)
let sampled st r =
  let hit = r.counter land ((1 lsl r.rate_log2) - 1) = 0 in
  r.counter <- r.counter + 1;
  if hit then begin
    r.analysed <- r.analysed + 1;
    if r.analysed >= st.decay_every && r.rate_log2 < st.floor_log2 then begin
      r.analysed <- 0;
      r.rate_log2 <- r.rate_log2 + 1
    end
  end;
  hit

let create ?(floor_rate = 0.02) ?(decay_every = 64)
    ?(suppression = Suppression.empty) () =
  check_floor_rate floor_rate;
  if decay_every < 1 then invalid_arg "Literace_sampling.create: decay_every < 1";
  let inner =
    Dynamic_granularity.create ~sharing:false ~name:"ft-byte" ~suppression ()
  in
  let st =
    {
      floor_log2 = floor_log2_of_rate floor_rate;
      decay_every;
      regions = Hashtbl.create 64;
      inner;
      stats = Run_stats.create ();
      analysed_c = Metrics.counter inner.Detector.metrics "sampling.analysed";
      skipped_c = Metrics.counter inner.Detector.metrics "sampling.skipped";
    }
  in
  let on_event ev =
    match ev with
    | Event.Access { kind; loc; _ } ->
      st.stats.accesses <- st.stats.accesses + 1;
      if kind = Event.Write then st.stats.writes <- st.stats.writes + 1
      else st.stats.reads <- st.stats.reads + 1;
      if sampled st (region_of st loc) then begin
        Metrics.incr st.analysed_c;
        st.inner.on_event ev
      end
      else
        (* skipped entirely: LiteRace's unsoundness, counted in its own
           instrument — [same_epoch] keeps meaning same-epoch hits *)
        Metrics.incr st.skipped_c
    | Event.Acquire _ | Event.Release _ | Event.Fork _ | Event.Join _
    | Event.Thread_exit _ ->
      st.stats.sync_ops <- st.stats.sync_ops + 1;
      st.inner.on_event ev
    | Event.Alloc _ ->
      st.stats.allocs <- st.stats.allocs + 1;
      st.inner.on_event ev
    | Event.Free _ ->
      st.stats.frees <- st.stats.frees + 1;
      st.inner.on_event ev
  in
  let process_batch =
    Race_sampler.filtering_batch ~inner ~stats:st.stats ~analysed:st.analysed_c
      ~skipped:st.skipped_c ~keep:(fun b i ->
        sampled st (region_of st b.Batch.loc.(i)))
  in
  {
    Detector.name = "literace-sampling";
    on_event;
    process_batch = Some process_batch;
    finish = st.inner.finish;
    collector = st.inner.collector;
    account = st.inner.account;
    stats = st.stats;
    metrics = st.inner.metrics;
    transitions = st.inner.transitions;
    degrade = st.inner.degrade;
  }
