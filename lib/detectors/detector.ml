open Dgrace_events
open Dgrace_shadow

type t = {
  name : string;
  on_event : Event.t -> unit;
  process_batch : (Batch.t -> unit) option;
  finish : unit -> unit;
  collector : Report.Collector.t;
  account : Accounting.t;
  stats : Run_stats.t;
  metrics : Dgrace_obs.Metrics.t;
  transitions : Dgrace_obs.State_matrix.t option;
  degrade : (unit -> bool) option;
}

let races t = Report.Collector.races t.collector
let race_count t = Report.Collector.count t.collector

let null () =
  {
    name = "none";
    on_event = (fun (_ : Event.t) -> ());
    process_batch = None;
    finish = (fun () -> ());
    collector = Report.Collector.create ();
    account = Accounting.create ();
    stats = Run_stats.create ();
    metrics = Dgrace_obs.Metrics.create ();
    transitions = None;
    degrade = None;
  }
