(** LiteRace-style sampling (Marino, Musuvathi & Narayanasamy, PLDI
    2009), from the paper's §VI.

    LiteRace instruments everything but {e analyses} only a sample of
    accesses, guided by the cold-region hypothesis: rarely executed
    code is more likely to hide races than hot code, so each code
    region's sampling rate starts at 100% and decays as the region gets
    hot, down to a floor.  Synchronisation operations are always
    processed (the clocks must stay exact); skipped accesses simply
    never reach the underlying detector — which is why sampling trades
    coverage for speed and "may miss critical data races" (§VI).
    Skipped accesses are counted in the [sampling.skipped] counter
    (and analysed ones in [sampling.analysed]) of the detector's
    registry, never in [Run_stats.same_epoch].

    We use the access's source-location label as the code region and
    byte-granularity FastTrack underneath.  See doc/sampling.md for
    the rate-floor contract and {!Race_sampler} for the granule-level
    sampler that composes with dynamic granularity. *)

open Dgrace_events

val effective_floor : floor_rate:float -> float
(** The steady-state rate a maximally hot region converges to: the
    deepest power-of-two halving that is still [>= floor_rate]
    (e.g. [0.02 -> 1/32 = 0.03125]).  Exposed so tests can pin the
    floor contract.
    @raise Invalid_argument on a floor_rate outside (0, 1]. *)

val create :
  ?floor_rate:float ->
  ?decay_every:int ->
  ?suppression:Suppression.t ->
  unit ->
  Detector.t
(** Each region starts at rate 1.0; after every [decay_every] analysed
    accesses from a region its rate halves, stopping at the {e last
    halving at or above} [floor_rate] (defaults: 0.02 and 64) — the
    effective rate never drops below [floor_rate], see
    {!effective_floor}.  Deterministic: the "coin" is a counter per
    region, not a PRNG. *)
