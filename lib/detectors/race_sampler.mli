(** Granule-level sampling with O(1) per-access cost.

    Ground: "Dynamic Race Detection with O(1) Samples" (PAPERS.md) —
    for billion-event traces, analyse a principled subset of accesses
    so the detector's cost is bounded regardless of trace length.
    This wrapper composes that idea with the paper's dynamic-granularity
    insight: the unit of sampling is the {e granule} — the aligned
    {!Dynamic_granularity.share_granule} line that bounds vector-clock
    sharing — not the individual byte or access.

    Why granules: sharing (and, since the sharded replay of
    doc/parallel.md, the whole detector verdict) is partitionable by
    granule — what a detector reports for addresses inside one granule
    depends only on the accesses touching that granule plus the global
    synchronisation order, which the sampler always forwards.  Sampling
    whole granules therefore keeps the inner detector {e exact on the
    sampled subspace}: every race it reports is a race the full run
    reports, bit-identical location and stack, and cell shapes /
    sharing decisions inside a sampled granule are undisturbed.
    Byte- or access-level sampling has neither property (an unsampled
    interleaved write silently weakens the history of its neighbours).

    The selection is a deterministic hash of the granule id — no PRNG,
    no per-granule state, no warm-up: one multiply-shift decides each
    access, so the per-access sampling cost is O(1) and a replayed
    trace samples the identical subset every run (which is what lets
    the bench table check races-found columns into a baseline).

    [Access] mode ("sample:<rate>") is the naive comparison point:
    every access flips an independent deterministic coin, so the
    analysed set is a per-access subsample with none of the granule
    guarantees.  It exists for the bench table's granule-vs-access
    comparison and for [sample:1.0] differential testing.

    Skipped accesses are counted in the [sampling.skipped] counter of
    the inner detector's registry (never in [Run_stats.same_epoch] —
    that field means what it says); analysed accesses in
    [sampling.analysed].  See doc/sampling.md. *)

open Dgrace_events

type mode =
  | Granule  (** sample whole share_granule-aligned lines (default) *)
  | Access  (** independent per-access coin — no granule guarantees *)

val default_seed : int

val granule_of_addr : int -> int
(** The aligned {!Dynamic_granularity.share_granule} line id of an
    address (its index, not its base address). *)

val selected : rate:float -> seed:int -> int -> bool
(** The pure selection decision for a granule id (or, in [Access]
    mode, an access index): a deterministic hash compared against
    [rate].  [rate = 1.0] selects everything. *)

val filtering_batch :
  inner:Detector.t ->
  stats:Run_stats.t ->
  analysed:Dgrace_obs.Metrics.counter ->
  skipped:Dgrace_obs.Metrics.counter ->
  keep:(Batch.t -> int -> bool) ->
  Batch.t ->
  unit
(** Shared batched fast path for sampling wrappers ({!create} and
    {!Literace_sampling}): walk a batch in row order, count stream
    statistics exactly as the per-event wrapper does, copy kept access
    rows and {e all} non-access rows (sync must stay exact) into an
    internal batch — preserving each row's stream offset — and flush
    it through the inner detector's own [process_batch] (or, when the
    inner has none, an offset-stamped per-event loop).  [keep] is
    consulted for access rows only and must match the per-event
    decision function so both paths analyse the identical subset. *)

val create :
  ?mode:mode ->
  ?rate:float ->
  ?seed:int ->
  ?name:string ->
  inner:Detector.t ->
  unit ->
  Detector.t
(** Wrap [inner] (any {!Spec.to_detector} product) in a sampler that
    forwards every synchronisation / alloc / free event and the
    selected fraction [rate] (default [0.1]) of accesses.  In
    [Granule] mode an access straddling a granule boundary is analysed
    when {e either} side is selected, so a selected granule always
    sees its complete access set.  [rate] must be in (0, 1];
    [rate = 1.0] forwards everything and is bit-identical to [inner].
    @raise Invalid_argument on a rate outside (0, 1]. *)
