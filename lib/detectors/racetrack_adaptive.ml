open Dgrace_vclock
open Dgrace_events
open Dgrace_shadow
module Vec = Dgrace_util.Vec

type cell = {
  mutable w : Epoch.t;
  mutable w_loc : string;
  mutable r : Read_state.t;
  mutable r_loc : string;
  mutable racy : bool;
}

let cell_cost = 8 * 8

type state = {
  region : int;
  intern : Vc_intern.t;
  env : Vc_env.t;
  coarse : (int, cell) Hashtbl.t;  (* region base -> one clock *)
  refined : (int, unit) Hashtbl.t;  (* regions switched to fine mode *)
  fine : cell Shadow_table.t;  (* word-granule cells of refined regions *)
  bitmaps : Epoch_bitmap.t option Vec.t;
  account : Accounting.t;
  stats : Run_stats.t;
  collector : Report.Collector.t;
}

let bitmap st tid =
  while Vec.length st.bitmaps <= tid do
    Vec.push st.bitmaps None
  done;
  match Vec.get st.bitmaps tid with
  | Some b -> b
  | None ->
    let b = Epoch_bitmap.create ~account:st.account () in
    Vec.set st.bitmaps tid (Some b);
    b

let fresh_cell st n_locs =
  Accounting.vc_created st.account;
  Accounting.bind_locations st.account n_locs;
  Accounting.add_vc st.account cell_cost;
  { w = Epoch.none; w_loc = ""; r = Read_state.No_reads; r_loc = ""; racy = false }

let retire_cell st c =
  Accounting.vc_freed st.account;
  Accounting.add_vc st.account (-cell_cost);
  Read_state.release c.r;
  c.r <- Read_state.No_reads

(* FastTrack rules on one cell; [previous] reports the conflicting
   access when the result is [true]. *)
let ft_check_and_update st c ~write ~tid ~tvc ~here ~loc ~on_race =
  if write then begin
    if not (Epoch.equal c.w here) then
      if not (Vector_clock.epoch_leq c.w tvc) then
        on_race (Race_info.of_write ~w:c.w ~loc:c.w_loc)
      else if not (Read_state.leq c.r tvc) then
        on_race (Race_info.of_read_state c.r ~against:tvc ~loc:c.r_loc)
      else begin
        c.w <- here;
        c.w_loc <- loc;
        match c.r with
        | Read_state.Vc _ ->
          Read_state.release c.r;
          c.r <- Read_state.No_reads
        | Read_state.No_reads | Read_state.Ep _ -> ()
      end
  end
  else if not (Read_state.same_epoch c.r here) then begin
    if not (Vector_clock.epoch_leq c.w tvc) then
      on_race (Race_info.of_write ~w:c.w ~loc:c.w_loc)
    else begin
      c.r <- Read_state.update ~intern:st.intern c.r ~tid ~tvc;
      c.r_loc <- loc
    end
  end

let refine st region_base =
  (match Hashtbl.find_opt st.coarse region_base with
   | Some c ->
     Hashtbl.remove st.coarse region_base;
     retire_cell st c;
     Accounting.add_hash st.account (-24)
   | None -> ());
  Hashtbl.replace st.refined region_base ();
  Accounting.add_hash st.account 24

let on_access st ~tid ~kind ~addr ~size ~loc =
  st.stats.accesses <- st.stats.accesses + 1;
  let write = kind = Event.Write in
  if write then st.stats.writes <- st.stats.writes + 1
  else st.stats.reads <- st.stats.reads + 1;
  let bm = bitmap st tid in
  if Epoch_bitmap.test bm ~write addr && Epoch_bitmap.test bm ~write (addr + size - 1)
  then st.stats.same_epoch <- st.stats.same_epoch + 1
  else begin
    let tvc = Vc_env.clock_of st.env tid in
    let here = Epoch.make ~tid ~clock:(Vector_clock.get tvc tid) in
    let reported = ref false in
    let a = ref (addr land lnot (st.region - 1)) in
    let hi = addr + size in
    while !a < hi do
      let region_base = !a in
      if Hashtbl.mem st.refined region_base then begin
        (* fine mode: word-granule cells; a race here recurred after
           refinement and is reported *)
        let f = ref (max region_base (addr land lnot 3)) in
        let fhi = min hi (region_base + st.region) in
        while !f < fhi do
          let slot = !f in
          let c =
            match Shadow_table.get st.fine slot with
            | Some c -> c
            | None ->
              let c = fresh_cell st 4 in
              Shadow_table.set st.fine slot c;
              c
          in
          if not c.racy then
            ft_check_and_update st c ~write ~tid ~tvc ~here ~loc
              ~on_race:(fun previous ->
                c.racy <- true;
                if not !reported then begin
                  reported := true;
                  let current =
                    Race_info.current ~tid ~kind ~clock:(Epoch.clock here) ~loc
                  in
                  let r =
                    Report.make ~addr:slot ~size:4 ~current ~previous
                      ~granule:(slot, slot + 4) ()
                  in
                  ignore (Report.Collector.add st.collector r : bool)
                end);
          f := !f + 4
        done
      end
      else begin
        (* coarse mode: one clock for the whole region; a potential
           race refines the region instead of reporting *)
        let c =
          match Hashtbl.find_opt st.coarse region_base with
          | Some c -> c
          | None ->
            let c = fresh_cell st st.region in
            Hashtbl.replace st.coarse region_base c;
            Accounting.add_hash st.account 24;
            c
        in
        ft_check_and_update st c ~write ~tid ~tvc ~here ~loc
          ~on_race:(fun _previous -> refine st region_base)
      end;
      a := region_base + st.region
    done;
    Epoch_bitmap.mark bm ~write ~lo:addr ~hi:(addr + size)
  end

let on_free st ~addr ~size =
  st.stats.frees <- st.stats.frees + 1;
  let a = ref (addr land lnot (st.region - 1)) in
  while !a < addr + size do
    (match Hashtbl.find_opt st.coarse !a with
     | Some c ->
       Hashtbl.remove st.coarse !a;
       retire_cell st c;
       Accounting.add_hash st.account (-24)
     | None -> ());
    a := !a + st.region
  done;
  Shadow_table.iter_range
    (fun _ _ c -> retire_cell st c)
    st.fine ~lo:addr ~hi:(addr + size);
  Shadow_table.remove_range st.fine ~lo:addr ~hi:(addr + size)

let create ?(region = 64) ?(suppression = Suppression.empty)
    ?(vc_intern = true) () =
  if region < 4 || region land (region - 1) <> 0 then
    invalid_arg "Racetrack_adaptive.create: region must be a power of two >= 4";
  let account = Accounting.create () in
  let intern =
    Vc_intern.create ~hash_consing:vc_intern
      ~on_bytes:(fun d ->
        Accounting.add_vc account d;
        Accounting.add_interned account d)
      ()
  in
  let st =
    {
      region;
      intern;
      env = Vc_env.create ();
      coarse = Hashtbl.create 256;
      refined = Hashtbl.create 64;
      fine = Shadow_table.create ~mode:(Shadow_table.Fixed_bytes 4) ~account ();
      bitmaps = Vec.create ();
      account;
      stats = Run_stats.create ();
      collector = Report.Collector.create ~suppression ();
    }
  in
  let on_boundary tid = Epoch_bitmap.reset (bitmap st tid) in
  let on_event ev =
    if Vc_env.handle st.env ev ~on_boundary then
      st.stats.sync_ops <- st.stats.sync_ops + 1
    else
      match ev with
      | Event.Access { tid; kind; addr; size; loc } ->
        on_access st ~tid ~kind ~addr ~size ~loc
      | Event.Alloc _ -> st.stats.allocs <- st.stats.allocs + 1
      | Event.Free { addr; size; _ } -> on_free st ~addr ~size
      | Event.Acquire _ | Event.Release _ | Event.Fork _ | Event.Join _
      | Event.Thread_exit _ -> ()
  in
  let metrics = Dgrace_obs.Metrics.create () in
  {
    Detector.name = "racetrack-adaptive";
    on_event;
    process_batch = None;
    finish = (fun () -> Vclock_obs.publish metrics st.intern);
    collector = st.collector;
    account = st.account;
    stats = st.stats;
    metrics;
    transitions = None;
    degrade = None;
  }
