open Dgrace_vclock
open Dgrace_events
open Dgrace_shadow
module Iset = Lock_tracker.Iset

type entry = {
  etid : int;
  write : bool;
  clock : int;
  evc : Vc_intern.snap;  (* interned full snapshot — the memory cost *)
  locks : Iset.t;
  eloc : string;
}

(* the snapshot's own bytes are accounted by the arena (entries between
   two syncs all share one snapshot), so only the entry record and the
   lock set are charged here *)
let entry_bytes e = 8 * (8 + (3 * Iset.cardinal e.locks))

type cell = { mutable entries : entry list; mutable racy : bool }
(* newest first, bounded length *)

let cell_base_bytes = 8 * 4

type state = {
  granularity : int;
  history : int;
  intern : Vc_intern.t;
  env : Vc_env.t;
  locks : Lock_tracker.t;
  shadow : cell Shadow_table.t;
  account : Accounting.t;
  stats : Run_stats.t;
  collector : Report.Collector.t;
  pair_seen : (string * string, unit) Hashtbl.t;
}

let cell_at st a =
  match Shadow_table.get st.shadow a with
  | Some c -> c
  | None ->
    let c = { entries = []; racy = false } in
    Accounting.vc_created st.account;
    Accounting.bind_locations st.account st.granularity;
    Accounting.add_vc st.account cell_base_bytes;
    Shadow_table.set st.shadow a c;
    c

let races_with ~tid ~write ~tvc ~held e =
  e.etid <> tid
  && (write || e.write)
  && (not (Vc_intern.leq_clock e.evc tvc))
  && Iset.is_empty (Iset.inter e.locks held)

let on_access st ~tid ~kind ~addr ~size ~loc =
  st.stats.accesses <- st.stats.accesses + 1;
  let write = kind = Event.Write in
  if write then st.stats.writes <- st.stats.writes + 1
  else st.stats.reads <- st.stats.reads + 1;
  let tvc = Vc_env.clock_of st.env tid in
  let clock = Vector_clock.get tvc tid in
  let held = Lock_tracker.held st.locks tid in
  let g = st.granularity in
  let lo = addr land lnot (g - 1) in
  let hi = (addr + size + g - 1) land lnot (g - 1) in
  let a = ref lo in
  while !a < hi do
    let granule = !a in
    let c = cell_at st granule in
    let same_epoch =
      match c.entries with
      | e :: _ -> e.etid = tid && e.clock = clock && e.write = write
      | [] -> false
    in
    if same_epoch then st.stats.same_epoch <- st.stats.same_epoch + 1
    else begin
      if not c.racy then begin
        match List.find_opt (races_with ~tid ~write ~tvc ~held) c.entries with
        | Some e ->
          c.racy <- true;
          let pair = (e.eloc, loc) in
          if not (Hashtbl.mem st.pair_seen pair) then begin
            Hashtbl.replace st.pair_seen pair ();
            let current : Report.endpoint = { tid; kind; clock; loc } in
            let previous : Report.endpoint =
              {
                tid = e.etid;
                kind = (if e.write then Event.Write else Event.Read);
                clock = e.clock;
                loc = e.eloc;
              }
            in
            let r =
              Report.make ~addr:granule ~size:g ~current ~previous
                ~granule:(granule, granule + g) ()
            in
            ignore (Report.Collector.add st.collector r : bool)
          end
        | None -> ()
      end;
      let e =
        {
          etid = tid;
          write;
          clock;
          evc = Vc_intern.intern st.intern tvc;
          locks = held;
          eloc = loc;
        }
      in
      Accounting.add_vc st.account (entry_bytes e);
      let entries = e :: c.entries in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: tl ->
          if n = 1 then begin
            (* evicting the tail *)
            List.iter
              (fun d ->
                Vc_intern.release d.evc;
                Accounting.add_vc st.account (-entry_bytes d))
              tl;
            [ x ]
          end
          else x :: take (n - 1) tl
      in
      c.entries <- take st.history entries
    end;
    a := !a + g
  done

let on_free st ~addr ~size =
  st.stats.frees <- st.stats.frees + 1;
  Shadow_table.iter_range
    (fun _ _ c ->
      Accounting.vc_freed st.account;
      List.iter (fun e -> Vc_intern.release e.evc) c.entries;
      Accounting.add_vc st.account
        (-(cell_base_bytes
           + List.fold_left (fun acc e -> acc + entry_bytes e) 0 c.entries));
      c.entries <- [])
    st.shadow ~lo:addr ~hi:(addr + size);
  Shadow_table.remove_range st.shadow ~lo:addr ~hi:(addr + size)

let create ?(granularity = 4) ?(history = 2) ?(suppression = Suppression.empty)
    ?(vc_intern = true) () =
  if granularity <= 0 || granularity land (granularity - 1) <> 0 then
    invalid_arg "Hybrid_inspector.create: granularity must be a power of two";
  if history < 1 then invalid_arg "Hybrid_inspector.create: empty history";
  let account = Accounting.create () in
  let intern =
    Vc_intern.create ~hash_consing:vc_intern
      ~on_bytes:(fun d ->
        Accounting.add_vc account d;
        Accounting.add_interned account d)
      ()
  in
  let st =
    {
      granularity;
      history;
      intern;
      env = Vc_env.create ();
      locks = Lock_tracker.create ();
      shadow =
        Shadow_table.create ~mode:(Shadow_table.Fixed_bytes granularity) ~account ();
      account;
      stats = Run_stats.create ();
      collector = Report.Collector.create ~suppression ();
      pair_seen = Hashtbl.create 64;
    }
  in
  let on_event ev =
    if Vc_env.handle st.env ev ~on_boundary:(fun _ -> ()) then begin
      st.stats.sync_ops <- st.stats.sync_ops + 1;
      Lock_tracker.handle st.locks ev
    end
    else
      match ev with
      | Event.Access { tid; kind; addr; size; loc } ->
        on_access st ~tid ~kind ~addr ~size ~loc
      | Event.Alloc _ -> st.stats.allocs <- st.stats.allocs + 1
      | Event.Free { addr; size; _ } -> on_free st ~addr ~size
      | Event.Acquire _ | Event.Release _ | Event.Fork _ | Event.Join _
      | Event.Thread_exit _ -> ()
  in
  let metrics = Dgrace_obs.Metrics.create () in
  {
    Detector.name = "inspector-hybrid";
    on_event;
    process_batch = None;
    finish = (fun () -> Vclock_obs.publish metrics st.intern);
    collector = st.collector;
    account = st.account;
    stats = st.stats;
    metrics;
    transitions = None;
    degrade = None;
  }
