open Dgrace_events
open Dgrace_shadow
module Iset = Lock_tracker.Iset

type phase =
  | Virgin
  | Exclusive of int  (* owning thread; no discipline checks yet *)
  | Shared  (* read-shared by several threads *)
  | Shared_modified  (* written by several threads: discipline enforced *)

type cell = {
  mutable phase : phase;
  mutable candidates : Iset.t;
  mutable loc : string;
  mutable last_tid : int;
  mutable racy : bool;
}

let cell_bytes c = 8 * (7 + (3 * Iset.cardinal c.candidates))

type state = {
  granularity : int;
  locks : Lock_tracker.t;
  shadow : cell Shadow_table.t;
  account : Accounting.t;
  stats : Run_stats.t;
  collector : Report.Collector.t;
}

let cell_at st a =
  match Shadow_table.get st.shadow a with
  | Some c -> c
  | None ->
    let c =
      { phase = Virgin; candidates = Iset.empty; loc = ""; last_tid = -1; racy = false }
    in
    Accounting.vc_created st.account;
    Accounting.bind_locations st.account st.granularity;
    Accounting.add_vc st.account (cell_bytes c);
    Shadow_table.set st.shadow a c;
    c

let refine st c held =
  let before = cell_bytes c in
  c.candidates <- Iset.inter c.candidates held;
  let after = cell_bytes c in
  if after <> before then Accounting.add_vc st.account (after - before)

let on_access st ~tid ~kind ~addr ~size ~loc =
  st.stats.accesses <- st.stats.accesses + 1;
  let write = kind = Event.Write in
  if write then st.stats.writes <- st.stats.writes + 1
  else st.stats.reads <- st.stats.reads + 1;
  let held = Lock_tracker.held st.locks tid in
  let g = st.granularity in
  let lo = addr land lnot (g - 1) in
  let hi = (addr + size + g - 1) land lnot (g - 1) in
  let reported = ref false in
  let a = ref lo in
  while !a < hi do
    let slot_lo = !a in
    let c = cell_at st slot_lo in
    if not c.racy then begin
      (match c.phase with
       | Virgin ->
         c.phase <- Exclusive tid;
         c.candidates <- held;
         c.loc <- loc;
         c.last_tid <- tid
       | Exclusive owner when owner = tid ->
         c.loc <- loc;
         (* Eraser leaves the candidate set untouched while exclusive *)
         ()
       | Exclusive _ ->
         c.phase <- (if write then Shared_modified else Shared);
         refine st c held
       | Shared ->
         if write then c.phase <- Shared_modified;
         refine st c held
       | Shared_modified -> refine st c held);
      (match c.phase with
       | Shared_modified when Iset.is_empty c.candidates ->
         c.racy <- true;
         if not !reported then begin
           reported := true;
           let current : Report.endpoint = { tid; kind; clock = 0; loc } in
           let previous : Report.endpoint =
             { tid = c.last_tid; kind = Event.Write; clock = 0; loc = c.loc }
           in
           let r =
             Report.make ~addr:slot_lo ~size:g ~current ~previous
               ~granule:(slot_lo, slot_lo + g) ()
           in
           ignore (Report.Collector.add st.collector r : bool)
         end
       | Virgin | Exclusive _ | Shared | Shared_modified -> ());
      c.last_tid <- tid;
      if not c.racy then c.loc <- loc
    end;
    a := !a + g
  done

let on_free st ~addr ~size =
  st.stats.frees <- st.stats.frees + 1;
  Shadow_table.iter_range
    (fun _ _ c ->
      Accounting.vc_freed st.account;
      Accounting.add_vc st.account (-cell_bytes c))
    st.shadow ~lo:addr ~hi:(addr + size);
  Shadow_table.remove_range st.shadow ~lo:addr ~hi:(addr + size)

let create ?(granularity = 4) ?(suppression = Suppression.empty) () =
  if granularity <= 0 || granularity land (granularity - 1) <> 0 then
    invalid_arg "Lockset.create: granularity must be a power of two";
  let account = Accounting.create () in
  let st =
    {
      granularity;
      locks = Lock_tracker.create ();
      shadow =
        Shadow_table.create ~mode:(Shadow_table.Fixed_bytes granularity) ~account ();
      account;
      stats = Run_stats.create ();
      collector = Report.Collector.create ~suppression ();
    }
  in
  let on_event ev =
    match ev with
    | Event.Access { tid; kind; addr; size; loc } ->
      on_access st ~tid ~kind ~addr ~size ~loc
    | Event.Acquire _ | Event.Release _ ->
      st.stats.sync_ops <- st.stats.sync_ops + 1;
      Lock_tracker.handle st.locks ev
    | Event.Fork _ | Event.Join _ | Event.Thread_exit _ ->
      st.stats.sync_ops <- st.stats.sync_ops + 1
    | Event.Alloc _ -> st.stats.allocs <- st.stats.allocs + 1
    | Event.Free { addr; size; _ } -> on_free st ~addr ~size
  in
  {
    Detector.name = "eraser-lockset";
    on_event;
    process_batch = None;
    finish = (fun () -> ());
    collector = st.collector;
    account = st.account;
    stats = st.stats;
    metrics = Dgrace_obs.Metrics.create ();
    transitions = None;
    degrade = None;
  }
