open Dgrace_vclock
open Dgrace_events
open Dgrace_shadow
module Vec = Dgrace_util.Vec
module Metrics = Dgrace_obs.Metrics
module Span = Dgrace_obs.Span

type cell = {
  mutable w : Epoch.t;
  mutable w_loc : string;
  mutable r : Read_state.t;
  mutable r_loc : string;
  mutable racy : bool;
}

(* cell record: header + 5 fields, plus the 8-byte "instruction pointer"
   a C implementation would store per plane *)
let cell_cost = 8 * (6 + 2)

type state = {
  granularity : int;
  intern : Vc_intern.t;
  env : Vc_env.t;
  shadow : cell Shadow_table.t;
  bitmaps : Epoch_bitmap.t option Vec.t;  (* per thread *)
  account : Accounting.t;
  stats : Run_stats.t;
  collector : Report.Collector.t;
  metrics : Metrics.t;
  m_analysed : Metrics.counter;  (* accesses that left the fast path *)
  m_epoch_cmp : Metrics.counter;  (* O(1) epoch comparisons *)
  m_vc_op : Metrics.counter;  (* full vector-clock reads/joins *)
  (* Sampled phase timers: real under [create ~tracer], [Span.disabled]
     stand-ins otherwise — see Dynamic_granularity for the rationale. *)
  tm_shadow : Span.timer;  (* shadow cell lookups *)
  tm_vc : Span.timer;  (* epoch / vector-clock checks and updates *)
}

let bitmap st tid =
  while Vec.length st.bitmaps <= tid do
    Vec.push st.bitmaps None
  done;
  match Vec.get st.bitmaps tid with
  | Some b -> b
  | None ->
    let b = Epoch_bitmap.create ~account:st.account () in
    Vec.set st.bitmaps tid (Some b);
    b

let fresh_cell st =
  Accounting.vc_created st.account;
  Accounting.bind_locations st.account 1;
  Accounting.add_vc st.account cell_cost;
  { w = Epoch.none; w_loc = ""; r = Read_state.No_reads; r_loc = ""; racy = false }

let retire_cell st c =
  Accounting.vc_freed st.account;
  Accounting.add_vc st.account (-cell_cost);
  Read_state.release c.r;
  c.r <- Read_state.No_reads

let cell_at st a =
  match Shadow_table.get st.shadow a with
  | Some c -> c
  | None ->
    let c = fresh_cell st in
    Shadow_table.set st.shadow a c;
    c

(* Update [c.r] for a read; snapshot bytes for the read-shared
   representation are accounted by the arena. *)
let record_read st c ~tid ~tvc ~loc =
  c.r <- Read_state.update ~intern:st.intern c.r ~tid ~tvc;
  (match c.r with
   | Read_state.Vc _ -> Metrics.incr st.m_vc_op
   | Read_state.No_reads | Read_state.Ep _ -> Metrics.incr st.m_epoch_cmp);
  c.r_loc <- loc

let report_race st ~slot_lo ~current ~previous =
  let r =
    Report.make ~addr:slot_lo ~size:st.granularity ~current ~previous
      ~granule:(slot_lo, slot_lo + st.granularity) ()
  in
  ignore (Report.Collector.add st.collector r : bool)

let on_access st ~tid ~kind ~addr ~size ~loc =
  st.stats.accesses <- st.stats.accesses + 1;
  let write = kind = Event.Write in
  if write then st.stats.writes <- st.stats.writes + 1
  else st.stats.reads <- st.stats.reads + 1;
  let bm = bitmap st tid in
  if Epoch_bitmap.test_range bm ~write ~lo:addr ~hi:(addr + size - 1) then
    st.stats.same_epoch <- st.stats.same_epoch + 1
  else begin
    Metrics.incr st.m_analysed;
    let tvc = Vc_env.clock_of st.env tid in
    let here = Epoch.make ~tid ~clock:(Vector_clock.get tvc tid) in
    let g = st.granularity in
    let lo = addr land lnot (g - 1) in
    let hi = (addr + size + g - 1) land lnot (g - 1) in
    let reported = ref false in
    let race c ~previous ~slot_lo =
      c.racy <- true;
      if not !reported then begin
        reported := true;
        let current =
          Race_info.current ~tid ~kind ~clock:(Epoch.clock here) ~loc
        in
        report_race st ~slot_lo ~current ~previous
      end
    in
    let a = ref lo in
    while !a < hi do
      let slot_lo = !a in
      Span.timer_start st.tm_shadow;
      let c = cell_at st slot_lo in
      Span.timer_stop st.tm_shadow;
      if not c.racy then begin
        Span.timer_start st.tm_vc;
        if write then begin
          if not (Epoch.equal c.w here) then begin
            Metrics.incr st.m_epoch_cmp;
            (match c.r with
             | Read_state.Vc _ -> Metrics.incr st.m_vc_op
             | Read_state.No_reads | Read_state.Ep _ -> ());
            if not (Vector_clock.epoch_leq c.w tvc) then
              race c ~previous:(Race_info.of_write ~w:c.w ~loc:c.w_loc) ~slot_lo
            else if not (Read_state.leq c.r tvc) then
              race c
                ~previous:(Race_info.of_read_state c.r ~against:tvc ~loc:c.r_loc)
                ~slot_lo;
            if not c.racy then begin
              c.w <- here;
              c.w_loc <- loc;
              (* a write ordered after all reads lets the read history
                 collapse back to the cheap representation *)
              match c.r with
              | Read_state.Vc _ ->
                Read_state.release c.r;
                c.r <- Read_state.No_reads
              | Read_state.No_reads | Read_state.Ep _ -> ()
            end
          end
        end
        else if not (Read_state.same_epoch c.r here) then begin
          Metrics.incr st.m_epoch_cmp;
          if not (Vector_clock.epoch_leq c.w tvc) then
            race c ~previous:(Race_info.of_write ~w:c.w ~loc:c.w_loc) ~slot_lo
          else record_read st c ~tid ~tvc ~loc
        end;
        Span.timer_stop st.tm_vc
      end;
      a := !a + g
    done;
    Epoch_bitmap.mark bm ~write ~lo:addr ~hi:(addr + size)
  end

let on_free st ~addr ~size =
  st.stats.frees <- st.stats.frees + 1;
  Shadow_table.iter_range
    (fun _ _ c -> retire_cell st c)
    st.shadow ~lo:addr ~hi:(addr + size);
  Shadow_table.remove_range st.shadow ~lo:addr ~hi:(addr + size)

(* Page-clustered batch application groups by aligned 4 KiB shadow
   pages — the same alignment as [Dynamic_granularity.share_granule]
   and the shadow tables' leaf pages. *)
let cluster_page_bits = 12

let create ?(granularity = 1) ?(suppression = Suppression.empty)
    ?(vc_intern = true) ?(page_cluster = true) ?tracer () =
  if granularity <= 0 || granularity land (granularity - 1) <> 0 then
    invalid_arg "Fasttrack.create: granularity must be a power of two";
  let account = Accounting.create () in
  let metrics = Metrics.create () in
  let intern =
    Vc_intern.create ~hash_consing:vc_intern
      ~on_bytes:(fun d ->
        Accounting.add_vc account d;
        Accounting.add_interned account d)
      ()
  in
  let st =
    {
      granularity;
      intern;
      env = Vc_env.create ();
      shadow =
        Shadow_table.create ~mode:(Shadow_table.Fixed_bytes granularity) ~account ();
      bitmaps = Vec.create ();
      account;
      stats = Run_stats.create ();
      collector = Report.Collector.create ~suppression ();
      metrics;
      m_analysed = Metrics.counter metrics "accesses.analysed";
      m_epoch_cmp = Metrics.counter metrics "phase.epoch_compare";
      m_vc_op = Metrics.counter metrics "phase.vc_op";
      tm_shadow =
        (match tracer with
         | Some buf -> Span.timer buf ~name:"phase.shadow_lookup" ~mask:7
         | None -> Span.disabled ());
      tm_vc =
        (match tracer with
         | Some buf -> Span.timer buf ~name:"phase.vc_check" ~mask:7
         | None -> Span.disabled ());
    }
  in
  let on_boundary tid = Epoch_bitmap.reset (bitmap st tid) in
  let on_event ev =
    if Vc_env.handle st.env ev ~on_boundary then
      st.stats.sync_ops <- st.stats.sync_ops + 1
    else
      match ev with
      | Event.Access { tid; kind; addr; size; loc } ->
        on_access st ~tid ~kind ~addr ~size ~loc
      | Event.Alloc _ -> st.stats.allocs <- st.stats.allocs + 1
      | Event.Free { addr; size; _ } -> on_free st ~addr ~size
      | Event.Acquire _ | Event.Release _ | Event.Fork _ | Event.Join _
      | Event.Thread_exit _ -> ()
  in
  (* Batched fast path; see the dynamic-granularity twin for the
     shape.  Accesses walk the columns directly, sync rows go through
     the kind-coded clock dispatch, and the collector tag is stamped
     per row. *)
  let process_batch_rows (b : Batch.t) =
    let n = Batch.length b in
    let kind = b.Batch.kind
    and ta = b.Batch.a
    and tb = b.Batch.b
    and tc = b.Batch.c
    and tloc = b.Batch.loc
    and toff = b.Batch.off in
    (* Same-epoch test inlined with the thread's bitmap cached across
       same-tid runs; a hit makes exactly the state changes
       [on_access]'s fast path would (no collector tag — hits never
       report).  [i < n <= capacity] of every column, so the reads are
       in bounds by construction. *)
    let cached = ref None in
    let bm_for tid =
      match !cached with
      | Some (t, bm) when t = tid -> bm
      | _ ->
        let bm = bitmap st tid in
        cached := Some (tid, bm);
        bm
    in
    for i = 0 to n - 1 do
      let k = Array.unsafe_get kind i in
      if k <= Batch.code_write then begin
        let tid = Array.unsafe_get ta i in
        let addr = Array.unsafe_get tb i in
        let size = Array.unsafe_get tc i in
        let write = k = Batch.code_write in
        if
          Epoch_bitmap.test_range (bm_for tid) ~write ~lo:addr
            ~hi:(addr + size - 1)
        then begin
          st.stats.accesses <- st.stats.accesses + 1;
          if write then st.stats.writes <- st.stats.writes + 1
          else st.stats.reads <- st.stats.reads + 1;
          st.stats.same_epoch <- st.stats.same_epoch + 1
        end
        else begin
          Report.Collector.set_tag st.collector (Array.unsafe_get toff i);
          on_access st ~tid
            ~kind:(if write then Event.Write else Event.Read)
            ~addr ~size ~loc:(Array.unsafe_get tloc i)
        end
      end
      else if k = Batch.code_alloc then st.stats.allocs <- st.stats.allocs + 1
      else if k = Batch.code_free then begin
        Report.Collector.set_tag st.collector (Array.unsafe_get toff i);
        on_free st ~addr:(Array.unsafe_get tb i) ~size:(Array.unsafe_get tc i)
      end
      else if
        Vc_env.handle_coded st.env ~kind:k ~a:(Array.unsafe_get ta i)
          ~b:(Array.unsafe_get tb i) ~on_boundary
      then st.stats.sync_ops <- st.stats.sync_ops + 1
    done
  in
  (* Page-clustered variant (doc/shadow.md): slots are [granularity]
     bytes, aligned, so for granularity <= 4096 no cell ever spans a
     4 KiB page — rows whose rounded slot range stays inside one page
     commute across pages, and only sync rows, frees and accesses
     whose slot range straddles a page act as in-order barriers
     (unlike the dynamic detector there is no persistent cell that
     spans pages, so no weld set is needed).  Order within a page and
     the per-batch collector resort give byte-identical reports. *)
  let max_groups = 64 in
  let slot_mask = 255 in
  let group_page = Array.make max_groups 0 in
  let group_first = Array.make max_groups (-1) in
  let group_last = Array.make max_groups (-1) in
  let page_slot = Array.make (slot_mask + 1) (-1) in
  let run_start = ref (Array.make Batch.default_capacity 0) in
  let run_len = ref (Array.make Batch.default_capacity 0) in
  let run_next = ref (Array.make Batch.default_capacity (-1)) in
  let m_cluster_rows = Metrics.counter metrics "cluster.rows" in
  let m_cluster_pages = Metrics.counter metrics "cluster.pages" in
  let m_cluster_barriers = Metrics.counter metrics "cluster.barriers" in
  let process_batch_clustered (b : Batch.t) =
    let n = Batch.length b in
    if Array.length !run_start < n then begin
      run_start := Array.make n 0;
      run_len := Array.make n 0;
      run_next := Array.make n (-1)
    end;
    let rs = !run_start and rl = !run_len and rn = !run_next in
    let kind = b.Batch.kind
    and ta = b.Batch.a
    and tb = b.Batch.b
    and tc = b.Batch.c
    and tloc = b.Batch.loc
    and toff = b.Batch.off in
    let n0 = Report.Collector.count st.collector in
    let cached = ref None in
    let bm_for tid =
      match !cached with
      | Some (t, bm) when t = tid -> bm
      | _ ->
        let bm = bitmap st tid in
        cached := Some (tid, bm);
        bm
    in
    let apply_access i =
      let tid = Array.unsafe_get ta i in
      let addr = Array.unsafe_get tb i in
      let size = Array.unsafe_get tc i in
      let write = Array.unsafe_get kind i = Batch.code_write in
      if
        Epoch_bitmap.test_range (bm_for tid) ~write ~lo:addr
          ~hi:(addr + size - 1)
      then begin
        st.stats.accesses <- st.stats.accesses + 1;
        if write then st.stats.writes <- st.stats.writes + 1
        else st.stats.reads <- st.stats.reads + 1;
        st.stats.same_epoch <- st.stats.same_epoch + 1
      end
      else begin
        Report.Collector.set_tag st.collector (Array.unsafe_get toff i);
        on_access st ~tid
          ~kind:(if write then Event.Write else Event.Read)
          ~addr ~size ~loc:(Array.unsafe_get tloc i)
      end
    in
    let g = st.granularity in
    let ngroups = ref 0
    and nruns = ref 0
    and pending = ref 0
    and last_page = ref (-1)
    and last_row = ref (-2)
    and last_run = ref (-1) in
    let flush () =
      if !ngroups > 0 then begin
        for gi = 0 to !ngroups - 1 do
          let r = ref (Array.unsafe_get group_first gi) in
          while !r >= 0 do
            let s = Array.unsafe_get rs !r in
            for i = s to s + Array.unsafe_get rl !r - 1 do
              apply_access i
            done;
            r := Array.unsafe_get rn !r
          done
        done;
        Metrics.add m_cluster_pages !ngroups;
        Metrics.add m_cluster_rows !pending;
        ngroups := 0;
        nruns := 0;
        pending := 0;
        last_page := -1;
        last_row := -2;
        last_run := -1
      end
    in
    for i = 0 to n - 1 do
      let k = Array.unsafe_get kind i in
      if k <= Batch.code_write then begin
        let addr = Array.unsafe_get tb i in
        let size = Array.unsafe_get tc i in
        (* the rounded slot range [lo, hi) is what the slow path
           walks; cluster by its page, barrier when it spans two *)
        let lo = addr land lnot (g - 1) in
        let hi = (addr + size + g - 1) land lnot (g - 1) in
        if lo lsr cluster_page_bits <> (hi - 1) lsr cluster_page_bits then begin
          flush ();
          Metrics.incr m_cluster_barriers;
          apply_access i
        end
        else begin
          let page = lo lsr cluster_page_bits in
          if !last_page = page && !last_row + 1 = i then begin
            (* the hot path: this row continues the current run *)
            Array.unsafe_set rl !last_run (Array.unsafe_get rl !last_run + 1);
            last_row := i;
            incr pending
          end
          else begin
            let s = page land slot_mask in
            let cand = Array.unsafe_get page_slot s in
            let gi =
              if
                cand >= 0 && cand < !ngroups
                && Array.unsafe_get group_page cand = page
              then cand
              else begin
                (* slot miss (new page, or a collision evicted it): a
                   fresh group is always order-correct, and if the
                   table is full an early flush is just a virtual
                   barrier — correctness is unaffected *)
                if !ngroups = max_groups then flush ();
                let gi = !ngroups in
                group_page.(gi) <- page;
                group_first.(gi) <- -1;
                group_last.(gi) <- -1;
                Array.unsafe_set page_slot s gi;
                ngroups := gi + 1;
                gi
              end
            in
            let r = !nruns in
            nruns := r + 1;
            Array.unsafe_set rs r i;
            Array.unsafe_set rl r 1;
            Array.unsafe_set rn r (-1);
            if Array.unsafe_get group_first gi < 0 then
              Array.unsafe_set group_first gi r
            else Array.unsafe_set rn (Array.unsafe_get group_last gi) r;
            Array.unsafe_set group_last gi r;
            last_page := page;
            last_row := i;
            last_run := r;
            incr pending
          end
        end
      end
      else if k = Batch.code_alloc then
        st.stats.allocs <- st.stats.allocs + 1
      else if k = Batch.code_free then begin
        flush ();
        Report.Collector.set_tag st.collector (Array.unsafe_get toff i);
        on_free st ~addr:(Array.unsafe_get tb i) ~size:(Array.unsafe_get tc i)
      end
      else begin
        flush ();
        if
          Vc_env.handle_coded st.env ~kind:k ~a:(Array.unsafe_get ta i)
            ~b:(Array.unsafe_get tb i) ~on_boundary
        then st.stats.sync_ops <- st.stats.sync_ops + 1
      end
    done;
    flush ();
    Report.Collector.resort_since st.collector n0
  in
  let process_batch =
    if page_cluster && granularity <= 1 lsl cluster_page_bits then
      process_batch_clustered
    else process_batch_rows
  in
  let finish () =
    let g name v = Metrics.set (Metrics.gauge metrics name) v in
    let s : Shadow_table.stats = Shadow_table.stats st.shadow in
    g "shadow.pages_live" s.pages_live;
    g "shadow.pages_pooled" s.pages_pooled;
    g "shadow.page_allocs" s.page_allocs;
    g "shadow.page_recycles" s.page_recycles;
    g "shadow.index_lookups" s.lookups;
    g "shadow.mru_hits" s.mru_hits;
    g "shadow.dir_bytes" s.dir_bytes;
    let ca = ref 0 and cr = ref 0 in
    for i = 0 to Vec.length st.bitmaps - 1 do
      match Vec.get st.bitmaps i with
      | Some b ->
        let bs : Epoch_bitmap.stats = Epoch_bitmap.stats b in
        ca := !ca + bs.chunk_allocs;
        cr := !cr + bs.chunk_recycles
      | None -> ()
    done;
    g "shadow.bitmap_chunk_allocs" !ca;
    g "shadow.bitmap_chunk_recycles" !cr;
    Vclock_obs.publish metrics st.intern
  in
  {
    Detector.name =
      (if granularity = 1 then "ft-byte"
       else if granularity = 4 then "ft-word"
       else Printf.sprintf "ft-%dB" granularity);
    on_event;
    process_batch = Some process_batch;
    finish;
    collector = st.collector;
    account = st.account;
    stats = st.stats;
    metrics = st.metrics;
    transitions = None;
    degrade = None;
  }
