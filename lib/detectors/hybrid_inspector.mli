(** A hybrid happens-before + lockset detector standing in for Intel
    Inspector XE in the Table 6 comparison.

    Inspector XE is closed source; its published behaviour class is a
    hybrid checker that keeps a bounded per-location history of
    accesses with enough context to reconstruct both sides of a race.
    We model that cost profile faithfully rather than clone the tool:
    every shadow granule holds a FIFO window of recent accesses, each
    carrying a {e full vector-clock snapshot} and the thread's lockset
    — which is exactly why this detector uses several times the memory
    of the epoch-based FastTrack family — and a race is reported when
    two accesses from different threads, at least one a write, are
    neither happens-before ordered nor protected by a common lock.

    Reports are deduplicated per instruction pair (location label
    pair), mimicking Inspector's reporting, in addition to the
    first-race-per-address rule of the shared collector. *)

open Dgrace_events

val create :
  ?granularity:int ->
  ?history:int ->
  ?suppression:Suppression.t ->
  ?vc_intern:bool ->
  unit ->
  Detector.t
(** [history] is the per-granule access-window length (default 2).
    [~vc_intern:false] disables hash-consing of the history snapshots. *)
