(* Publish a Vc_intern arena's statistics as vclock.* gauges.  Raw
   counts only — ratios (hit rate, dedup, shares-per-copy) are derived
   downstream so the gauges stay max-mergeable across shards like the
   shadow.* family (lib/obs Metrics.merge_into takes the max of
   gauges, which for per-shard monotone counts is the hottest
   shard). *)

open Dgrace_vclock
module Metrics = Dgrace_obs.Metrics

let publish metrics arena =
  let g name v = Metrics.set (Metrics.gauge metrics name) v in
  let s : Vc_intern.stats = Vc_intern.stats arena in
  g "vclock.arena_bytes" s.s_bytes;
  g "vclock.arena_peak_bytes" s.s_peak_bytes;
  g "vclock.pool_bytes" s.s_pool_bytes;
  g "vclock.snapshots_live" s.s_live;
  g "vclock.snapshots_peak" s.s_peak_live;
  g "vclock.interns" s.s_interns;
  g "vclock.intern_hits" s.s_hits;
  g "vclock.memo_hits" s.s_memo_hits;
  g "vclock.shares" s.s_retains;
  g "vclock.releases" s.s_releases;
  g "vclock.payload_allocs" s.s_payload_allocs;
  g "vclock.payload_recycles" s.s_payload_recycles
