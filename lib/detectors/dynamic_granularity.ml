open Dgrace_vclock
open Dgrace_events
open Dgrace_shadow
module Vec = Dgrace_util.Vec
module Metrics = Dgrace_obs.Metrics
module Span = Dgrace_obs.Span
module State_matrix = Dgrace_obs.State_matrix

(* A cell is one vector clock shared by the locations in [lo, hi).
   Cells live in one plane only (read or write); the dormant history
   field of the other plane stays at its initial value.  [refs] counts
   the address-bytes whose shadow slot points at this cell: splits,
   merges and frees keep it in step, and [refs = hi - lo] means the
   covered range has no holes. *)
type cell = {
  mutable lo : int;
  mutable hi : int;
  mutable refs : int;
  mutable cstate : Share_state.t;
  mutable born : Epoch.t;
  mutable w : Epoch.t;
  mutable r : Read_state.t;
  mutable loc : string;
  mutable evidence : int;
      (* §VII extension: consecutive steady-state accesses whose clock
         matched a settled neighbour's; reaching the threshold re-opens
         the sharing decision *)
}

(* header + 8 fields + the stored access location pointer *)
let cell_cost = 8 * 10

(* Clock sharing is confined to aligned [share_granule]-byte lines of
   the address space: a sharing decision never inspects state across a
   line, so the detector's verdict for a line depends only on the
   accesses that touch it (plus the globally-ordered sync events).
   This is what makes the sharded offline analysis of [Dgrace_par]
   bit-identical to the sequential run — see doc/parallel.md.  The
   line is far wider than any neighbour scan ([Shadow_table] looks at
   most one 128-byte block away), so in practice it only suppresses
   the rare coalescing attempt that straddles a 4 KiB boundary. *)
let share_granule_bits = 12
let share_granule = 1 lsl share_granule_bits
let same_granule a b = a lsr share_granule_bits = b lsr share_granule_bits

(* Would merging ranges [lo1, hi1) and [lo2, hi2) stay inside one
   share line?  (A cell created by a single line-straddling access may
   itself span a line; such a cell never coalesces further.) *)
let merge_within_granule ~lo1 ~hi1 ~lo2 ~hi2 =
  same_granule (min lo1 lo2) (max hi1 hi2 - 1)

type state = {
  sharing : bool;  (* false = the paper's byte detector: footprint
                      locations, no clock sharing at all *)
  init_state : bool;
  init_sharing : bool;
  reshare_after : int;  (* 0 = off; k>0 = the §VII "more dynamic"
                           extension: a Private cell whose clock has
                           matched a settled neighbour's on k
                           consecutive analysed accesses merges *)
  write_guided_reads : bool;
      (* §VII extension: a read location with no read history of its
         own may join a neighbour whose write clocks it already shares *)
  intern : Vc_intern.t;  (* read-shared clock snapshots live here *)
  env : Vc_env.t;
  rplane : cell Shadow_table.t;
  wplane : cell Shadow_table.t;
  mutable bitmaps_on : bool;
      (* flipped off by the first degradation stage: every access then
         takes the slow path, but the bitmap bytes are gone for good *)
  bitmaps : Epoch_bitmap.t option Vec.t;
  account : Accounting.t;
  stats : Run_stats.t;
  collector : Report.Collector.t;
  (* telemetry: the sharing-state transition matrix plus direct-held
     instruments, so each hot-path update is one integer store *)
  metrics : Metrics.t;
  transitions : State_matrix.t;
  m_analysed : Metrics.counter;  (* accesses that left the fast path *)
  m_epoch_cmp : Metrics.counter;  (* O(1) epoch comparisons *)
  m_vc_op : Metrics.counter;  (* full vector-clock reads/joins *)
  m_decisions : Metrics.counter;
  m_dec_shared : Metrics.counter;
  m_dec_private : Metrics.counter;
  m_first_cells : Metrics.counter;  (* cell lifetimes begun *)
  m_splits : Metrics.counter;  (* extra lifetimes begun by splits *)
  m_adopted : Metrics.counter;  (* lifetimes begun by joining a region *)
  h_shared : Metrics.histogram;  (* region bytes at shared decisions *)
  h_private : Metrics.histogram;  (* region bytes at private decisions *)
  m_degrade : Metrics.counter;  (* degradation passes requested *)
  m_degrade_bitmap : Metrics.counter;  (* bitmap bytes freed *)
  m_degrade_merged : Metrics.counter;  (* cells force-coarsened away *)
  m_degrade_reads : Metrics.counter;  (* read VCs collapsed *)
  (* Per-phase sampled timers.  Real timers (registered on the tracing
     lane, armed by its dispatch wrapper) when the engine threads a
     lane through [create ~tracer]; [Span.disabled] stand-ins
     otherwise.  Either way every per-access site is one unconditional
     start/stop pair — a load and a branch when not sampling — so the
     traced and untraced detectors run the same code. *)
  tm_shadow : Span.timer;  (* shadow-table group lookups *)
  tm_vc : Span.timer;  (* epoch / vector-clock race checks *)
  tm_gran : Span.timer;  (* granularity transitions (first/second epoch) *)
}

(* Matrix row/column 0 is the virtual pre-first-access state; the
   Share_state values follow in [Share_state.index] order. *)
let matrix_states = Array.append [| "start" |] Share_state.names
let start_index = 0
let state_index s = 1 + Share_state.index s

let decided st ~shared ~bytes =
  Metrics.incr st.m_decisions;
  if shared then begin
    Metrics.incr st.m_dec_shared;
    Metrics.observe st.h_shared bytes
  end
  else begin
    Metrics.incr st.m_dec_private;
    Metrics.observe st.h_private bytes
  end

let plane st ~write = if write then st.wplane else st.rplane

let bitmap st tid =
  while Vec.length st.bitmaps <= tid do
    Vec.push st.bitmaps None
  done;
  match Vec.get st.bitmaps tid with
  | Some b -> b
  | None ->
    let b = Epoch_bitmap.create ~account:st.account () in
    Vec.set st.bitmaps tid (Some b);
    b

let fresh_cell st ~lo ~hi ~born ~state =
  Accounting.vc_created st.account;
  Accounting.bind_locations st.account (hi - lo);
  Accounting.add_vc st.account cell_cost;
  {
    lo;
    hi;
    refs = hi - lo;
    cstate = state;
    born;
    w = Epoch.none;
    r = Read_state.No_reads;
    loc = "";
    evidence = 0;
  }

let retire st c =
  Accounting.vc_freed st.account;
  Accounting.add_vc st.account (-cell_cost);
  (* snapshot bytes are accounted by the arena on the last release;
     clearing [c.r] keeps a double retire (possible when a free handler
     drops the refcount below zero twice) from double-releasing *)
  Read_state.release c.r;
  c.r <- Read_state.No_reads

let hist_equal ~write a b =
  if write then Epoch.equal a.w b.w else Read_state.equal a.r b.r

let update_hist st ~write c ~tid ~tvc ~here ~loc =
  if write then c.w <- here
  else begin
    c.r <- Read_state.update ~intern:st.intern c.r ~tid ~tvc;
    match c.r with
    | Read_state.Vc _ -> Metrics.incr st.m_vc_op
    | Read_state.No_reads | Read_state.Ep _ -> Metrics.incr st.m_epoch_cmp
  end;
  c.loc <- loc

(* Race check against the opposite plane over the accessed sub-range,
   walking cell groups so a shared clock is tested once, not per slot. *)
let find_conflict st ~write ~sub_lo ~sub_hi ~tvc =
  let pl = if write then st.rplane else st.wplane in
  let rec walk a =
    if a >= sub_hi then None
    else begin
      let _, ghi, v = Shadow_table.group pl a ~hi:sub_hi in
      match v with
      | Some c when c.cstate <> Share_state.Race ->
        (match c.r with
         | Read_state.Vc _ when write -> Metrics.incr st.m_vc_op
         | _ -> Metrics.incr st.m_epoch_cmp);
        if write then
          if not (Read_state.leq c.r tvc) then
            Some (Race_info.of_read_state c.r ~against:tvc ~loc:c.loc)
          else walk ghi
        else if not (Vector_clock.epoch_leq c.w tvc) then
          Some (Race_info.of_write ~w:c.w ~loc:c.loc)
        else walk ghi
      | Some _ | None -> walk ghi
    end
  in
  walk sub_lo

let check_races st ~write ~cell ~sub_lo ~sub_hi ~tvc =
  Span.timer_start st.tm_vc;
  if write then Metrics.incr st.m_epoch_cmp;
  let conflict =
    if write && not (Vector_clock.epoch_leq cell.w tvc) then
      Some (Race_info.of_write ~w:cell.w ~loc:cell.loc)
    else find_conflict st ~write ~sub_lo ~sub_hi ~tvc
  in
  Span.timer_stop st.tm_vc;
  conflict

(* A write that passed the read-write check dominates the reads of
   every read cell fully inside the written range: collapse them back
   to the cheap representation (FastTrack's WRITE SHARED rule). *)
let reset_contained_reads st ~sub_lo ~sub_hi =
  let rec walk a =
    if a < sub_hi then begin
      let _, ghi, v = Shadow_table.group st.rplane a ~hi:sub_hi in
      (match v with
       | Some rc
         when rc.cstate <> Share_state.Race && rc.lo >= sub_lo && rc.hi <= sub_hi
         ->
         Read_state.release rc.r;
         rc.r <- Read_state.No_reads
       | Some _ | None -> ());
      walk ghi
    end
  in
  walk sub_lo

let must_step st c stimulus =
  match Share_state.step c.cstate stimulus with
  | Some s ->
    State_matrix.record st.transitions ~from_:(state_index c.cstate)
      ~to_:(state_index s);
    c.cstate <- s
  | None -> assert false

(* The sharing group dissolves on a race: every member location —
   approximated as each maximal contiguous run of slots bound to the
   cell — is reported (how the paper's dynamic detector can report
   locations the fixed-granularity detectors do not) and the cell
   parks in [Race]. *)
let dissolve_and_report st ~write c ~current ~previous =
  let pl = plane st ~write in
  let run_lo = ref (-1) in
  let flush run_hi =
    if !run_lo >= 0 then begin
      let r =
        Report.make ~addr:!run_lo ~size:(run_hi - !run_lo) ~current ~previous
          ~granule:(c.lo, c.hi) ()
      in
      ignore (Report.Collector.add st.collector r : bool);
      run_lo := -1
    end
  in
  let a = ref c.lo in
  while !a < c.hi do
    let slo, shi = Shadow_table.slot_bounds pl !a in
    (match Shadow_table.get pl !a with
     | Some c' when c' == c -> if !run_lo < 0 then run_lo := slo
     | Some _ | None -> flush slo);
    a := shi
  done;
  flush c.hi;
  must_step st c Share_state.Race_on_l

(* Merge the (contiguous, hole-free) cell [l] into neighbour [nc]. *)
let absorb st ~write ~into:nc l ~stimulus =
  let pl = plane st ~write in
  Shadow_table.set_range pl ~lo:l.lo ~hi:l.hi nc;
  nc.lo <- min nc.lo l.lo;
  nc.hi <- max nc.hi l.hi;
  nc.refs <- nc.refs + l.refs;
  must_step st nc stimulus;
  Accounting.bind_locations st.account l.refs;
  retire st l

(* First access to the uncovered range [ulo, uhi): create the location
   and attempt the (temporary, Init-state) sharing of §III.A — or, in
   the no-Init-state ablation, make the single firm decision now.  The
   new location's history would be exactly "this epoch", so neighbour
   eligibility is checked before allocating anything and a matching
   neighbour is extended in place. *)
let first_access st ~write ~ulo ~uhi ~here ~tid ~tvc ~loc =
  let pl = plane st ~write in
  let eligible nc =
    merge_within_granule ~lo1:nc.lo ~hi1:nc.hi ~lo2:ulo ~hi2:uhi
    && (if write then Epoch.equal nc.w here
        else Read_state.same_epoch nc.r here)
    &&
    if st.init_state then Share_state.is_init nc.cstate
    else Share_state.is_settled nc.cstate
  in
  let sharing_allowed =
    st.sharing && ((not st.init_state) || st.init_sharing)
  in
  let candidate =
    if not sharing_allowed then None
    else
      match Shadow_table.prev_neighbor pl ulo with
      | Some (_, _, nc) when eligible nc -> Some nc
      | _ -> (
        match Shadow_table.next_neighbor pl (uhi - 1) with
        | Some (_, _, nc) when eligible nc -> Some nc
        | _ -> None)
  in
  match candidate with
  | Some nc ->
    Shadow_table.set_range pl ~lo:ulo ~hi:uhi nc;
    nc.lo <- min nc.lo ulo;
    nc.hi <- max nc.hi uhi;
    nc.refs <- nc.refs + (uhi - ulo);
    (* the cell's label stays that of its creating access: a shared
       label is approximate either way, and overwriting it would let a
       suppressed runtime label mask an application race *)
    must_step st nc
      (if st.init_state then Share_state.Init_neighbor_matched
       else Share_state.Adopted_by_neighbor);
    Metrics.incr st.m_adopted;
    Accounting.bind_locations st.account (uhi - ulo);
    decided st ~shared:true ~bytes:(nc.hi - nc.lo);
    nc
  | None ->
    let state =
      if st.init_state then Share_state.Init_private else Share_state.Private
    in
    let l = fresh_cell st ~lo:ulo ~hi:uhi ~born:here ~state in
    State_matrix.record st.transitions ~from_:start_index
      ~to_:(state_index state);
    Metrics.incr st.m_first_cells;
    decided st ~shared:false ~bytes:(uhi - ulo);
    update_hist st ~write l ~tid ~tvc ~here ~loc;
    Shadow_table.set_range pl ~lo:ulo ~hi:uhi l;
    l

(* Split [sub_lo, sub_hi) out of the Init cell [c] so the second-epoch
   decision applies to exactly the accessed location. *)
let split_off st ~write c ~sub_lo ~sub_hi =
  if c.lo = sub_lo && c.hi = sub_hi && c.refs = sub_hi - sub_lo then c
  else begin
    Metrics.incr st.m_splits;
    let l = fresh_cell st ~lo:sub_lo ~hi:sub_hi ~born:c.born ~state:c.cstate in
    l.w <- c.w;
    l.r <-
      (match c.r with
       | Read_state.Vc s ->
         (* O(1) share of the read-shared snapshot instead of a deep
            copy — both halves keep observing the same clock value *)
         Vc_intern.retain s;
         Read_state.Vc s
       | (Read_state.No_reads | Read_state.Ep _) as r -> r);
    l.loc <- c.loc;
    Shadow_table.set_range (plane st ~write) ~lo:sub_lo ~hi:sub_hi l;
    c.refs <- c.refs - (sub_hi - sub_lo);
    if c.lo = sub_lo then c.lo <- sub_hi;
    if c.hi = sub_hi then c.hi <- sub_lo;
    if c.refs <= 0 then retire st c;
    l
  end

(* Second-epoch access: split, race-check, then the firm sharing
   decision against the settled neighbours at the range boundaries. *)
let second_epoch st ~write c ~sub_lo ~sub_hi ~here ~tid ~tvc ~loc ~current =
  let pl = plane st ~write in
  let l = split_off st ~write c ~sub_lo ~sub_hi in
  match check_races st ~write ~cell:l ~sub_lo ~sub_hi ~tvc with
  | Some previous ->
    dissolve_and_report st ~write l ~current:(current ()) ~previous;
    l
  | None ->
    update_hist st ~write l ~tid ~tvc ~here ~loc;
    if write then reset_contained_reads st ~sub_lo ~sub_hi;
    let write_guided a =
      (* reads may share when the write plane is already shared across
         the boundary and the neighbour has no conflicting read info *)
      (not write) && st.write_guided_reads
      &&
      match (Shadow_table.get st.wplane a, Shadow_table.get st.wplane sub_lo) with
      | Some wa, Some wb -> wa == wb
      | (Some _ | None), _ -> false
    in
    let neighbor_at a =
      match Shadow_table.get pl a with
      | Some nc
        when nc != l
             && merge_within_granule ~lo1:nc.lo ~hi1:nc.hi ~lo2:sub_lo
                  ~hi2:sub_hi
             && Share_state.is_settled nc.cstate
             && (hist_equal ~write l nc
                 || (write_guided a && nc.r = Read_state.No_reads)) -> Some nc
      | Some _ | None -> None
    in
    let candidate =
      if not st.sharing then None
      else
        match neighbor_at (sub_lo - 1) with
        | Some nc -> Some nc
        | None -> neighbor_at sub_hi
    in
    (match candidate with
     | Some nc ->
       absorb st ~write ~into:nc l ~stimulus:Share_state.Adopted_by_neighbor;
       decided st ~shared:true ~bytes:(nc.hi - nc.lo);
       nc
     | None ->
       must_step st l
         (Share_state.Second_epoch_access { matching_settled_neighbor = false });
       decided st ~shared:false ~bytes:(l.hi - l.lo);
       l)

(* §VII extension: after k consecutive clock matches with a settled
   neighbour, re-open the sharing decision for a Private cell. *)
let try_reshare st ~write c =
  if
    st.reshare_after > 0
    && c.cstate = Share_state.Private
    && c.refs = c.hi - c.lo
  then begin
    let pl = plane st ~write in
    let matching a =
      match Shadow_table.get pl a with
      | Some nc
        when nc != c
             && merge_within_granule ~lo1:nc.lo ~hi1:nc.hi ~lo2:c.lo ~hi2:c.hi
             && Share_state.is_settled nc.cstate && hist_equal ~write c nc ->
        Some nc
      | Some _ | None -> None
    in
    match
      (match matching (c.lo - 1) with Some nc -> Some nc | None -> matching c.hi)
    with
    | Some nc ->
      c.evidence <- c.evidence + 1;
      if c.evidence >= st.reshare_after && nc.refs = nc.hi - nc.lo then begin
        absorb st ~write ~into:nc c ~stimulus:Share_state.Adopted_by_neighbor;
        decided st ~shared:true ~bytes:(nc.hi - nc.lo)
      end
    | None -> c.evidence <- 0
  end

(* Accesses after the firm decision: plain FastTrack on the cell. *)
let steady st ~write c ~sub_lo ~sub_hi ~here ~tid ~tvc ~loc ~current =
  Metrics.incr st.m_epoch_cmp;
  let same_epoch =
    if write then Epoch.equal c.w here else Read_state.same_epoch c.r here
  in
  if not same_epoch then begin
    match check_races st ~write ~cell:c ~sub_lo ~sub_hi ~tvc with
    | Some previous -> dissolve_and_report st ~write c ~current:(current ()) ~previous
    | None ->
      update_hist st ~write c ~tid ~tvc ~here ~loc;
      if write then reset_contained_reads st ~sub_lo ~sub_hi;
      try_reshare st ~write c
  end

(* ------------------------------------------------------------------ *)
(* Graceful degradation under a shadow-memory budget: staged shedding,
   cheapest precision cost first (doc/resilience.md documents exactly
   what each stage gives up).  Driven by the engine through
   [Detector.degrade] whenever the run is over its budget. *)

(* Stage 1: drop the per-thread same-epoch bitmaps and stop
   maintaining them.  Costs only speed (every access now takes the
   analysed path); precision is untouched. *)
let shed_bitmaps st =
  if not st.bitmaps_on then false
  else begin
    st.bitmaps_on <- false;
    let freed = ref 0 in
    for i = 0 to Vec.length st.bitmaps - 1 do
      (match Vec.get st.bitmaps i with
       | Some b ->
         freed := !freed + Epoch_bitmap.bytes b;
         Epoch_bitmap.reset b
       | None -> ());
      Vec.set st.bitmaps i None
    done;
    Metrics.add st.m_degrade_bitmap !freed;
    true
  end

(* Stage 2: force-coarsen — merge adjacent settled hole-free cells
   whose histories are equal onto one shared clock, ignoring the usual
   evidence threshold.  Same race verdicts, fewer clocks. *)
let coarsen_plane st ~write =
  let pl = plane st ~write in
  let cells = Hashtbl.create 64 in
  Shadow_table.iter
    (fun _ _ c ->
      if Share_state.is_settled c.cstate && c.refs = c.hi - c.lo then
        Hashtbl.replace cells c.lo c)
    pl;
  let los =
    Hashtbl.fold (fun lo _ acc -> lo :: acc) cells [] |> List.sort compare
  in
  let merged = ref 0 in
  List.iter
    (fun lo ->
      match Hashtbl.find_opt cells lo with
      | None -> ()
      | Some c -> (
        (* the cell must still be live, hole-free and own its range *)
        match Shadow_table.get pl c.lo with
        | Some c' when c' == c && c.refs = c.hi - c.lo -> (
          match Shadow_table.get pl (c.lo - 1) with
          | Some nc
            when nc != c
                 && merge_within_granule ~lo1:nc.lo ~hi1:nc.hi ~lo2:c.lo
                      ~hi2:c.hi
                 && Share_state.is_settled nc.cstate
                 && nc.refs = nc.hi - nc.lo && nc.hi = c.lo
                 && hist_equal ~write c nc ->
            Hashtbl.remove cells lo;
            absorb st ~write ~into:nc c
              ~stimulus:Share_state.Adopted_by_neighbor;
            incr merged
          | _ -> ())
        | _ -> ()))
    los;
  !merged

(* Stage 3: collapse read-shared vector clocks to "no reads".  This is
   the only stage that loses precision: a subsequent write can miss a
   read-write race whose read history was dropped. *)
let shed_read_vcs st =
  let dropped = ref 0 in
  Shadow_table.iter
    (fun _ _ c ->
      match c.r with
      | Read_state.Vc _ ->
        Read_state.release c.r;
        c.r <- Read_state.No_reads;
        incr dropped
      | Read_state.No_reads | Read_state.Ep _ -> ())
    st.rplane;
  !dropped

let degrade st =
  Metrics.incr st.m_degrade;
  if shed_bitmaps st then true
  else begin
    let merged = coarsen_plane st ~write:false + coarsen_plane st ~write:true in
    Metrics.add st.m_degrade_merged merged;
    if merged > 0 then true
    else begin
      let dropped = shed_read_vcs st in
      Metrics.add st.m_degrade_reads dropped;
      dropped > 0
    end
  end

let on_access st ~tid ~kind ~addr ~size ~loc =
  st.stats.accesses <- st.stats.accesses + 1;
  let write = kind = Event.Write in
  if write then st.stats.writes <- st.stats.writes + 1
  else st.stats.reads <- st.stats.reads + 1;
  let bm = if st.bitmaps_on then Some (bitmap st tid) else None in
  let fast_path =
    match bm with
    | Some bm ->
      Epoch_bitmap.test_range bm ~write ~lo:addr ~hi:(addr + size - 1)
    | None -> false
  in
  if fast_path then st.stats.same_epoch <- st.stats.same_epoch + 1
  else begin
    Metrics.incr st.m_analysed;
    let tvc = Vc_env.clock_of st.env tid in
    let here = Epoch.make ~tid ~clock:(Vector_clock.get tvc tid) in
    let current () =
      Race_info.current ~tid ~kind ~clock:(Epoch.clock here) ~loc
    in
    let pl = plane st ~write in
    (* sub-word accesses switch the indexing arrays they touch to byte
       slots (Fig. 4), so separately-protected packed fields never
       share a shadow granule *)
    Shadow_table.ensure_granularity pl ~addr ~size;
    let access_hi = addr + size in
    (* A settled hole-free cell is marked whole, so the rest of the
       granule rides the same-epoch fast path for this epoch; Init
       cells mark only the accessed group — they grow with every
       access and re-marking the growing range would be quadratic. *)
    let mark_covered c ~glo ~ghi =
      match bm with
      | None -> ()
      | Some bm ->
        if Share_state.is_settled c.cstate && c.refs = c.hi - c.lo then
          Epoch_bitmap.mark bm ~write ~lo:c.lo ~hi:c.hi
        else Epoch_bitmap.mark bm ~write ~lo:glo ~hi:ghi
    in
    let a = ref addr in
    while !a < access_hi do
      Span.timer_start st.tm_shadow;
      let glo, ghi, v = Shadow_table.group pl !a ~hi:access_hi in
      Span.timer_stop st.tm_shadow;
      (match v with
       | None ->
         Span.timer_start st.tm_gran;
         let c =
           first_access st ~write ~ulo:glo ~uhi:ghi ~here ~tid ~tvc ~loc
         in
         Span.timer_stop st.tm_gran;
         (match check_races st ~write ~cell:c ~sub_lo:glo ~sub_hi:ghi ~tvc with
          | Some previous ->
            dissolve_and_report st ~write c ~current:(current ()) ~previous
          | None ->
            if write then reset_contained_reads st ~sub_lo:glo ~sub_hi:ghi);
         mark_covered c ~glo ~ghi
       | Some c ->
         let final =
           if c.cstate = Share_state.Race then c
           else if Share_state.is_init c.cstate then
             if Epoch.equal here c.born then c (* first-epoch continuation *)
             else begin
               Span.timer_start st.tm_gran;
               let c' =
                 second_epoch st ~write c ~sub_lo:glo ~sub_hi:ghi ~here ~tid
                   ~tvc ~loc ~current
               in
               Span.timer_stop st.tm_gran;
               c'
             end
           else begin
             steady st ~write c ~sub_lo:glo ~sub_hi:ghi ~here ~tid ~tvc ~loc
               ~current;
             c
           end
         in
         mark_covered final ~glo ~ghi);
      a := ghi
    done
  end

let on_free st ~addr ~size =
  st.stats.frees <- st.stats.frees + 1;
  let hi = addr + size in
  List.iter
    (fun pl ->
      Shadow_table.iter_range
        (fun slo shi c ->
          (* slot bounds may overhang the freed range (word slot cut
             by the boundary); only the intersection is unbound *)
          c.refs <- c.refs - (min hi shi - max addr slo);
          if c.refs <= 0 then retire st c)
        pl ~lo:addr ~hi;
      Shadow_table.remove_range pl ~lo:addr ~hi)
    [ st.rplane; st.wplane ]

let create ?(sharing = true) ?(init_state = true) ?(init_sharing = true)
    ?(reshare_after = 0) ?(write_guided_reads = false)
    ?(index = Shadow_table.Adaptive) ?name ?(suppression = Suppression.empty)
    ?(vc_intern = true) ?(page_cluster = true) ?tracer () =
  let account = Accounting.create () in
  let metrics = Metrics.create () in
  let intern =
    Vc_intern.create ~hash_consing:vc_intern
      ~on_bytes:(fun d ->
        Accounting.add_vc account d;
        Accounting.add_interned account d)
      ()
  in
  let st =
    {
      sharing;
      init_state;
      init_sharing;
      reshare_after;
      write_guided_reads;
      intern;
      env = Vc_env.create ();
      rplane = Shadow_table.create ~mode:index ~account ();
      wplane = Shadow_table.create ~mode:index ~account ();
      bitmaps_on = true;
      bitmaps = Vec.create ();
      account;
      stats = Run_stats.create ();
      collector = Report.Collector.create ~suppression ();
      metrics;
      transitions = State_matrix.create ~states:matrix_states;
      m_analysed = Metrics.counter metrics "accesses.analysed";
      m_epoch_cmp = Metrics.counter metrics "phase.epoch_compare";
      m_vc_op = Metrics.counter metrics "phase.vc_op";
      m_decisions = Metrics.counter metrics "sharing.decisions";
      m_dec_shared = Metrics.counter metrics "sharing.decisions.shared";
      m_dec_private = Metrics.counter metrics "sharing.decisions.private";
      m_first_cells = Metrics.counter metrics "cells.first_access";
      m_splits = Metrics.counter metrics "cells.split";
      m_adopted = Metrics.counter metrics "cells.adopted";
      h_shared = Metrics.histogram metrics "sharing.region_bytes.shared";
      h_private = Metrics.histogram metrics "sharing.region_bytes.private";
      m_degrade = Metrics.counter metrics "degrade.passes";
      m_degrade_bitmap = Metrics.counter metrics "degrade.bitmap_bytes_freed";
      m_degrade_merged = Metrics.counter metrics "degrade.cells_merged";
      m_degrade_reads = Metrics.counter metrics "degrade.read_vcs_dropped";
      tm_shadow =
        (match tracer with
         | Some buf -> Span.timer buf ~name:"phase.shadow_lookup" ~mask:7
         | None -> Span.disabled ());
      tm_vc =
        (match tracer with
         | Some buf -> Span.timer buf ~name:"phase.vc_check" ~mask:7
         | None -> Span.disabled ());
      tm_gran =
        (match tracer with
         | Some buf -> Span.timer buf ~name:"phase.granularity" ~mask:7
         | None -> Span.disabled ());
    }
  in
  let on_boundary tid =
    if st.bitmaps_on then Epoch_bitmap.reset (bitmap st tid)
  in
  let on_event ev =
    if Vc_env.handle st.env ev ~on_boundary then
      st.stats.sync_ops <- st.stats.sync_ops + 1
    else
      match ev with
      | Event.Access { tid; kind; addr; size; loc } ->
        on_access st ~tid ~kind ~addr ~size ~loc
      | Event.Alloc _ -> st.stats.allocs <- st.stats.allocs + 1
      | Event.Free { addr; size; _ } -> on_free st ~addr ~size
      | Event.Acquire _ | Event.Release _ | Event.Fork _ | Event.Join _
      | Event.Thread_exit _ -> ()
  in
  (* Batched fast path: walk the struct-of-arrays columns directly so
     the shadow-page MRU and the [Vc_intern] memo stay hot across the
     whole batch and accesses skip the event match entirely.  Sync
     rows run the same clock machinery as [on_event] through the
     kind-coded dispatch.  The collector tag is stamped per
     row so races attribute to stream positions exactly as the
     per-event engine loop does. *)
  let process_batch_rows (b : Batch.t) =
    let n = Batch.length b in
    let kind = b.Batch.kind
    and ta = b.Batch.a
    and tb = b.Batch.b
    and tc = b.Batch.c
    and tloc = b.Batch.loc
    and toff = b.Batch.off in
    (* The same-epoch test is inlined here with the thread's bitmap
       cached across the run of same-tid rows, so a fast-path hit
       costs two bit tests and three stat bumps — the exact state
       changes [on_access]'s own fast path makes, in particular no
       collector tag (hits never report).  [i < n <= capacity] of
       every column, so the reads are in bounds by construction. *)
    let cached = ref None in
    let bm_for tid =
      match !cached with
      | Some (t, bm) when t = tid -> bm
      | _ ->
        let bm = bitmap st tid in
        cached := Some (tid, bm);
        bm
    in
    for i = 0 to n - 1 do
      let k = Array.unsafe_get kind i in
      if k <= Batch.code_write then begin
        let tid = Array.unsafe_get ta i in
        let addr = Array.unsafe_get tb i in
        let size = Array.unsafe_get tc i in
        let write = k = Batch.code_write in
        if
          st.bitmaps_on
          &&
          Epoch_bitmap.test_range (bm_for tid) ~write ~lo:addr
            ~hi:(addr + size - 1)
        then begin
          st.stats.accesses <- st.stats.accesses + 1;
          if write then st.stats.writes <- st.stats.writes + 1
          else st.stats.reads <- st.stats.reads + 1;
          st.stats.same_epoch <- st.stats.same_epoch + 1
        end
        else begin
          Report.Collector.set_tag st.collector (Array.unsafe_get toff i);
          on_access st ~tid
            ~kind:(if write then Event.Write else Event.Read)
            ~addr ~size ~loc:(Array.unsafe_get tloc i)
        end
      end
      else if k = Batch.code_alloc then st.stats.allocs <- st.stats.allocs + 1
      else if k = Batch.code_free then begin
        Report.Collector.set_tag st.collector (Array.unsafe_get toff i);
        on_free st ~addr:(Array.unsafe_get tb i) ~size:(Array.unsafe_get tc i)
      end
      else if
        Vc_env.handle_coded st.env ~kind:k ~a:(Array.unsafe_get ta i)
          ~b:(Array.unsafe_get tb i) ~on_boundary
      then st.stats.sync_ops <- st.stats.sync_ops + 1
    done
  in
  (* Page-clustered batch application (doc/shadow.md).  Access rows are
     grouped by aligned share-granule line (= one 4 KiB shadow page)
     and applied line-by-line, so Shadow_table leaf pages, their MRU
     slots and the epoch-bitmap chunk cache are each touched once per
     line per batch instead of once per row.  Equivalence rests on the
     share-granule confinement invariant: no sharing decision, merge
     probe or report ever crosses an aligned line, so rows on distinct
     lines commute.  The exceptions become barriers that flush pending
     groups and apply solo, in row order:

     - sync rows (they advance clocks and reset epoch bitmaps),
     - frees (they dissolve cells over an arbitrary range),
     - line-straddling accesses (the one way a cell can span lines) —
       and every later access to a line such a cell may live on, via
       the persistent [welded] set.

     Alloc rows only bump a counter, so they commute and apply
     immediately.  Order within a line is preserved by construction;
     the collector resort restores global report order (tags are
     per-row, so the result is byte-identical to row order — the
     QCheck law in test/test_pipeline.ml exercises exactly this).

     Bookkeeping is run-length: consecutive rows on the same line
     collapse into one (start, len) run — the common case is a single
     compare-and-increment per row — and runs chain per group.  The
     page→group map is a direct-mapped slot cache; a collision simply
     opens a second group for the page, which is still order-correct
     (groups apply in creation order and a line's rows land in its
     groups in row order). *)
  let max_groups = 64 in
  let slot_mask = 255 in
  let group_page = Array.make max_groups 0 in
  let group_first = Array.make max_groups (-1) in
  let group_last = Array.make max_groups (-1) in
  let page_slot = Array.make (slot_mask + 1) (-1) in
  let run_start = ref (Array.make Batch.default_capacity 0) in
  let run_len = ref (Array.make Batch.default_capacity 0) in
  let run_next = ref (Array.make Batch.default_capacity (-1)) in
  let welded : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let weld_count = ref 0 in
  let m_cluster_rows = Metrics.counter metrics "cluster.rows" in
  let m_cluster_pages = Metrics.counter metrics "cluster.pages" in
  let m_cluster_barriers = Metrics.counter metrics "cluster.barriers" in
  let process_batch_clustered (b : Batch.t) =
    let n = Batch.length b in
    if Array.length !run_start < n then begin
      run_start := Array.make n 0;
      run_len := Array.make n 0;
      run_next := Array.make n (-1)
    end;
    let rs = !run_start and rl = !run_len and rn = !run_next in
    let kind = b.Batch.kind
    and ta = b.Batch.a
    and tb = b.Batch.b
    and tc = b.Batch.c
    and tloc = b.Batch.loc
    and toff = b.Batch.off in
    let n0 = Report.Collector.count st.collector in
    let cached = ref None in
    let bm_for tid =
      match !cached with
      | Some (t, bm) when t = tid -> bm
      | _ ->
        let bm = bitmap st tid in
        cached := Some (tid, bm);
        bm
    in
    let apply_access i =
      let tid = Array.unsafe_get ta i in
      let addr = Array.unsafe_get tb i in
      let size = Array.unsafe_get tc i in
      let write = Array.unsafe_get kind i = Batch.code_write in
      if
        st.bitmaps_on
        &&
        Epoch_bitmap.test_range (bm_for tid) ~write ~lo:addr
          ~hi:(addr + size - 1)
      then begin
        st.stats.accesses <- st.stats.accesses + 1;
        if write then st.stats.writes <- st.stats.writes + 1
        else st.stats.reads <- st.stats.reads + 1;
        st.stats.same_epoch <- st.stats.same_epoch + 1
      end
      else begin
        Report.Collector.set_tag st.collector (Array.unsafe_get toff i);
        on_access st ~tid
          ~kind:(if write then Event.Write else Event.Read)
          ~addr ~size ~loc:(Array.unsafe_get tloc i)
      end
    in
    let ngroups = ref 0
    and nruns = ref 0
    and pending = ref 0
    and last_page = ref (-1)
    and last_row = ref (-2)
    and last_run = ref (-1) in
    let flush () =
      if !ngroups > 0 then begin
        for g = 0 to !ngroups - 1 do
          let r = ref (Array.unsafe_get group_first g) in
          while !r >= 0 do
            let s = Array.unsafe_get rs !r in
            for i = s to s + Array.unsafe_get rl !r - 1 do
              apply_access i
            done;
            r := Array.unsafe_get rn !r
          done
        done;
        Metrics.add m_cluster_pages !ngroups;
        Metrics.add m_cluster_rows !pending;
        ngroups := 0;
        nruns := 0;
        pending := 0;
        last_page := -1;
        last_row := -2;
        last_run := -1
      end
    in
    for i = 0 to n - 1 do
      let k = Array.unsafe_get kind i in
      if k <= Batch.code_write then begin
        let addr = Array.unsafe_get tb i in
        let size = Array.unsafe_get tc i in
        if size > 1 && not (same_granule addr (addr + size - 1)) then begin
          (* line-straddling access: barrier, and weld its lines so
             every later access to them stays ordered behind the cell
             this row may create *)
          flush ();
          Metrics.incr m_cluster_barriers;
          for p = addr lsr share_granule_bits
              to (addr + size - 1) lsr share_granule_bits do
            if not (Hashtbl.mem welded p) then begin
              Hashtbl.replace welded p ();
              incr weld_count
            end
          done;
          apply_access i
        end
        else if
          !weld_count > 0 && Hashtbl.mem welded (addr lsr share_granule_bits)
        then begin
          flush ();
          Metrics.incr m_cluster_barriers;
          apply_access i
        end
        else begin
          let page = addr lsr share_granule_bits in
          if !last_page = page && !last_row + 1 = i then begin
            (* the hot path: this row continues the current run *)
            Array.unsafe_set rl !last_run (Array.unsafe_get rl !last_run + 1);
            last_row := i;
            incr pending
          end
          else begin
            let s = page land slot_mask in
            let cand = Array.unsafe_get page_slot s in
            let g =
              if
                cand >= 0 && cand < !ngroups
                && Array.unsafe_get group_page cand = page
              then cand
              else begin
                (* slot miss (new page, or a collision evicted it): a
                   fresh group is always order-correct, and if the
                   table is full an early flush is just a virtual
                   barrier — correctness is unaffected *)
                if !ngroups = max_groups then flush ();
                let g = !ngroups in
                group_page.(g) <- page;
                group_first.(g) <- -1;
                group_last.(g) <- -1;
                Array.unsafe_set page_slot s g;
                ngroups := g + 1;
                g
              end
            in
            let r = !nruns in
            nruns := r + 1;
            Array.unsafe_set rs r i;
            Array.unsafe_set rl r 1;
            Array.unsafe_set rn r (-1);
            if Array.unsafe_get group_first g < 0 then
              Array.unsafe_set group_first g r
            else Array.unsafe_set rn (Array.unsafe_get group_last g) r;
            Array.unsafe_set group_last g r;
            last_page := page;
            last_row := i;
            last_run := r;
            incr pending
          end
        end
      end
      else if k = Batch.code_alloc then
        (* a pure counter bump commutes with any pending group; the
           row break is enough to end the current run *)
        st.stats.allocs <- st.stats.allocs + 1
      else if k = Batch.code_free then begin
        flush ();
        Report.Collector.set_tag st.collector (Array.unsafe_get toff i);
        on_free st ~addr:(Array.unsafe_get tb i) ~size:(Array.unsafe_get tc i)
      end
      else begin
        flush ();
        if
          Vc_env.handle_coded st.env ~kind:k ~a:(Array.unsafe_get ta i)
            ~b:(Array.unsafe_get tb i) ~on_boundary
        then st.stats.sync_ops <- st.stats.sync_ops + 1
      end
    done;
    flush ();
    Report.Collector.resort_since st.collector n0
  in
  let process_batch =
    if page_cluster then process_batch_clustered else process_batch_rows
  in
  let name =
    match name with
    | Some n -> n
    | None -> (
      if not sharing then "ft-footprint"
      else if reshare_after > 0 || write_guided_reads then "ft-dynamic-ext"
      else
        match (init_state, init_sharing) with
        | true, true -> "ft-dynamic"
        | true, false -> "ft-dynamic-no-init-sharing"
        | false, _ -> "ft-dynamic-no-init-state")
  in
  (* Publish the shadow-index internals (page directory + bitmap
     recycling) as gauges once the run is over. *)
  let finish () =
    let g name v = Metrics.set (Metrics.gauge metrics name) v in
    let s1 : Shadow_table.stats = Shadow_table.stats st.rplane
    and s2 : Shadow_table.stats = Shadow_table.stats st.wplane in
    g "shadow.pages_live" (s1.pages_live + s2.pages_live);
    g "shadow.pages_pooled" (s1.pages_pooled + s2.pages_pooled);
    g "shadow.page_allocs" (s1.page_allocs + s2.page_allocs);
    g "shadow.page_recycles" (s1.page_recycles + s2.page_recycles);
    g "shadow.page_expansions" (s1.expansions + s2.expansions);
    g "shadow.index_lookups" (s1.lookups + s2.lookups);
    g "shadow.mru_hits" (s1.mru_hits + s2.mru_hits);
    g "shadow.dir_bytes" (s1.dir_bytes + s2.dir_bytes);
    let ca = ref 0 and cr = ref 0 in
    for i = 0 to Vec.length st.bitmaps - 1 do
      match Vec.get st.bitmaps i with
      | Some b ->
        let s : Epoch_bitmap.stats = Epoch_bitmap.stats b in
        ca := !ca + s.chunk_allocs;
        cr := !cr + s.chunk_recycles
      | None -> ()
    done;
    g "shadow.bitmap_chunk_allocs" !ca;
    g "shadow.bitmap_chunk_recycles" !cr;
    Vclock_obs.publish metrics st.intern
  in
  {
    Detector.name;
    on_event;
    process_batch = Some process_batch;
    finish;
    collector = st.collector;
    account = st.account;
    stats = st.stats;
    metrics = st.metrics;
    transitions = Some st.transitions;
    degrade = Some (fun () -> degrade st);
  }
