(** FastTrack's adaptive read representation.

    Writes to a location are totally ordered until the first race, so a
    single epoch suffices for the write history.  Reads are not: after
    a read-shared pattern (several threads reading without ordering)
    the full vector clock is needed.  This module is the adaptive
    [None | Epoch | Vc] representation together with the FastTrack read
    rules (§II.C of the paper, rules READ EXCLUSIVE / READ SHARE /
    READ SHARED of the FastTrack paper).

    The read-shared clock is an interned {!Dgrace_vclock.Vc_intern}
    snapshot: a [Vc] value owns one reference and must be released
    (via {!release}, or implicitly by {!update} replacing it) when
    dropped. *)

open Dgrace_vclock

type t =
  | No_reads  (** never read (or reset by a dominating write) *)
  | Ep of Epoch.t  (** all reads ordered; last one was this epoch *)
  | Vc of Vc_intern.snap
      (** read-shared: per-thread last read clocks, interned *)

val equal : t -> t -> bool
(** Structural equality — the "same vector clock" test used by sharing
    decisions. *)

val leq : t -> Vector_clock.t -> bool
(** Do all recorded reads happen before the given thread clock?  The
    read-write race check is the negation. *)

val same_epoch : t -> Epoch.t -> bool
(** Is the last recorded read exactly this epoch (FastTrack's O(1)
    same-epoch read fast path)? *)

val update : intern:Vc_intern.t -> t -> tid:int -> tvc:Vector_clock.t -> t
(** Record a read by [tid] whose thread clock is [tvc]: stays an epoch
    when the previous reads are ordered before this one, inflates to an
    interned snapshot otherwise.  Any previous [Vc] reference is
    consumed; the caller owns the returned one. *)

val release : t -> unit
(** Drop the snapshot reference held by a [Vc] (no-op otherwise).
    Callers must do this before discarding a read state. *)

val bytes : t -> int
(** Storage attributed to this representation beyond the cell record
    (0 for [No_reads]/[Ep], the snapshot footprint for [Vc]).  Note
    that snapshots are shared: summing [bytes] over cells can exceed
    the arena's live bytes. *)

val pp : Format.formatter -> t -> unit
