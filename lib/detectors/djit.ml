open Dgrace_vclock
open Dgrace_events
open Dgrace_shadow
module Vec = Dgrace_util.Vec

type cell = {
  rvc : Vector_clock.t;
  wvc : Vector_clock.t;
  mutable w_loc : string;
  mutable r_loc : string;
  mutable racy : bool;
}

let cell_bytes c =
  8 * (6 + Vector_clock.heap_words c.rvc + Vector_clock.heap_words c.wvc)

type state = {
  granularity : int;
  env : Vc_env.t;
  shadow : cell Shadow_table.t;
  bitmaps : Epoch_bitmap.t option Vec.t;
  account : Accounting.t;
  stats : Run_stats.t;
  collector : Report.Collector.t;
}

let bitmap st tid =
  while Vec.length st.bitmaps <= tid do
    Vec.push st.bitmaps None
  done;
  match Vec.get st.bitmaps tid with
  | Some b -> b
  | None ->
    let b = Epoch_bitmap.create ~account:st.account () in
    Vec.set st.bitmaps tid (Some b);
    b

let cell_at st a =
  match Shadow_table.get st.shadow a with
  | Some c -> c
  | None ->
    let c =
      {
        rvc = Vector_clock.create ();
        wvc = Vector_clock.create ();
        w_loc = "";
        r_loc = "";
        racy = false;
      }
    in
    Accounting.vc_created st.account;
    Accounting.bind_locations st.account 1;
    Accounting.add_vc st.account (cell_bytes c);
    Shadow_table.set st.shadow a c;
    c

(* Vector-clock growth is accounted by re-measuring around mutations. *)
let with_resize st c f =
  let before = cell_bytes c in
  f ();
  let after = cell_bytes c in
  if after <> before then Accounting.add_vc st.account (after - before)

let previous_write c ~against : Report.endpoint =
  let tid = Race_info.conflicting_tid c.wvc ~against in
  let tid = max tid 0 in
  { tid; kind = Event.Write; clock = Vector_clock.get c.wvc tid; loc = c.w_loc }

let previous_read c ~against : Report.endpoint =
  let tid = Race_info.conflicting_tid c.rvc ~against in
  let tid = max tid 0 in
  { tid; kind = Event.Read; clock = Vector_clock.get c.rvc tid; loc = c.r_loc }

let on_access st ~tid ~kind ~addr ~size ~loc =
  st.stats.accesses <- st.stats.accesses + 1;
  let write = kind = Event.Write in
  if write then st.stats.writes <- st.stats.writes + 1
  else st.stats.reads <- st.stats.reads + 1;
  let bm = bitmap st tid in
  if Epoch_bitmap.test bm ~write addr && Epoch_bitmap.test bm ~write (addr + size - 1)
  then st.stats.same_epoch <- st.stats.same_epoch + 1
  else begin
    let tvc = Vc_env.clock_of st.env tid in
    let clock = Vector_clock.get tvc tid in
    let g = st.granularity in
    let lo = addr land lnot (g - 1) in
    let hi = (addr + size + g - 1) land lnot (g - 1) in
    let reported = ref false in
    let race c ~previous ~slot_lo =
      c.racy <- true;
      if not !reported then begin
        reported := true;
        let current = Race_info.current ~tid ~kind ~clock ~loc in
        let r =
          Report.make ~addr:slot_lo ~size:g ~current ~previous
            ~granule:(slot_lo, slot_lo + g) ()
        in
        ignore (Report.Collector.add st.collector r : bool)
      end
    in
    let a = ref lo in
    while !a < hi do
      let slot_lo = !a in
      let c = cell_at st slot_lo in
      if not c.racy then
        if write then begin
          if not (Vector_clock.leq c.wvc tvc) then
            race c ~previous:(previous_write c ~against:tvc) ~slot_lo
          else if not (Vector_clock.leq c.rvc tvc) then
            race c ~previous:(previous_read c ~against:tvc) ~slot_lo
          else
            with_resize st c (fun () ->
                Vector_clock.set c.wvc tid clock;
                c.w_loc <- loc)
        end
        else begin
          if not (Vector_clock.leq c.wvc tvc) then
            race c ~previous:(previous_write c ~against:tvc) ~slot_lo
          else
            with_resize st c (fun () ->
                Vector_clock.set c.rvc tid clock;
                c.r_loc <- loc)
        end;
      a := !a + g
    done;
    Epoch_bitmap.mark bm ~write ~lo:addr ~hi:(addr + size)
  end

let on_free st ~addr ~size =
  st.stats.frees <- st.stats.frees + 1;
  Shadow_table.iter_range
    (fun _ _ c ->
      Accounting.vc_freed st.account;
      Accounting.add_vc st.account (-cell_bytes c))
    st.shadow ~lo:addr ~hi:(addr + size);
  Shadow_table.remove_range st.shadow ~lo:addr ~hi:(addr + size)

let create ?(granularity = 1) ?(suppression = Suppression.empty) () =
  if granularity <= 0 || granularity land (granularity - 1) <> 0 then
    invalid_arg "Djit.create: granularity must be a power of two";
  let account = Accounting.create () in
  let st =
    {
      granularity;
      env = Vc_env.create ();
      shadow =
        Shadow_table.create ~mode:(Shadow_table.Fixed_bytes granularity) ~account ();
      bitmaps = Vec.create ();
      account;
      stats = Run_stats.create ();
      collector = Report.Collector.create ~suppression ();
    }
  in
  let on_boundary tid = Epoch_bitmap.reset (bitmap st tid) in
  let on_event ev =
    if Vc_env.handle st.env ev ~on_boundary then
      st.stats.sync_ops <- st.stats.sync_ops + 1
    else
      match ev with
      | Event.Access { tid; kind; addr; size; loc } ->
        on_access st ~tid ~kind ~addr ~size ~loc
      | Event.Alloc _ -> st.stats.allocs <- st.stats.allocs + 1
      | Event.Free { addr; size; _ } -> on_free st ~addr ~size
      | Event.Acquire _ | Event.Release _ | Event.Fork _ | Event.Join _
      | Event.Thread_exit _ -> ()
  in
  let metrics = Dgrace_obs.Metrics.create () in
  let finish () =
    let module Metrics = Dgrace_obs.Metrics in
    let g name v = Metrics.set (Metrics.gauge metrics name) v in
    let s : Shadow_table.stats = Shadow_table.stats st.shadow in
    g "shadow.pages_live" s.pages_live;
    g "shadow.pages_pooled" s.pages_pooled;
    g "shadow.page_allocs" s.page_allocs;
    g "shadow.page_recycles" s.page_recycles;
    g "shadow.index_lookups" s.lookups;
    g "shadow.mru_hits" s.mru_hits;
    g "shadow.dir_bytes" s.dir_bytes
  in
  {
    Detector.name = (if granularity = 1 then "djit-byte" else Printf.sprintf "djit-%dB" granularity);
    on_event;
    process_batch = None;
    finish;
    collector = st.collector;
    account = st.account;
    stats = st.stats;
    metrics;
    transitions = None;
    degrade = None;
  }
