(** First-class detector values.

    A detector is a consumer of {!Dgrace_events.Event.t} plus the three
    observable products of a run: race reports, memory accounting, and
    stream statistics.  Representing detectors as records (rather than
    functors) lets the engine and the benchmark harness treat every
    algorithm — FastTrack at any granularity, DJIT+, segment-based DRD,
    lockset, hybrid — uniformly. *)

open Dgrace_events
open Dgrace_shadow

type t = {
  name : string;  (** e.g. ["fasttrack-dynamic"] *)
  on_event : Event.t -> unit;
      (** consume the next event of the stream, in order *)
  process_batch : (Batch.t -> unit) option;
      (** Batched fast path: consume a whole {!Batch.t} in row order,
          equivalent to [Batch.iter_events on_event] but free to keep
          caches hot across the batch.  Contract: before handling row
          [i] the implementation must stamp
          [Report.Collector.set_tag collector b.off.(i)] so races are
          attributed to stream positions exactly as the per-event
          engine loop does.  [None] means the engine always uses
          {!on_event} — every detector keeps working without one. *)
  finish : unit -> unit;
      (** end of stream: flush anything pending (e.g. final segment
          comparisons in the DRD detector) *)
  collector : Report.Collector.t;  (** the races found *)
  account : Accounting.t;  (** shadow-memory accounting *)
  stats : Run_stats.t;  (** stream statistics *)
  metrics : Dgrace_obs.Metrics.t;
      (** the detector's instrument registry: phase counters, sharing
          decisions, region-size histograms — empty for detectors that
          expose nothing beyond {!stats} *)
  transitions : Dgrace_obs.State_matrix.t option;
      (** sharing-state transition counts (dynamic-granularity
          detectors only) *)
  degrade : (unit -> bool) option;
      (** Shed shadow memory under budget pressure (graceful
          degradation): each call performs one shedding step —
          dropping fast-path bitmaps, force-coarsening equal-history
          regions onto shared clocks, collapsing read vector clocks —
          and returns [false] once nothing further can be shed.  The
          engine keeps calling while the run is over its
          [max_shadow_bytes] budget; a detector with [None] cannot
          degrade and a breached budget ends its run instead.
          Degraded precision is still sound for writes; dropped read
          history may miss read-write races (documented in
          [doc/resilience.md]). *)
}

val races : t -> Report.t list
val race_count : t -> int

val null : unit -> t
(** A detector that ignores everything — the "base time" measurement of
    the paper's slowdown columns (the workload running uninstrumented). *)
