open Dgrace_events
module Metrics = Dgrace_obs.Metrics

type mode = Granule | Access

let default_seed = 0x5eed

(* share_granule is a power of two (asserted in Dynamic_granularity);
   precompute its shift so the hot path is one logical shift. *)
let granule_shift =
  let rec go n g = if g <= 1 then n else go (n + 1) (g lsr 1) in
  go 0 Dynamic_granularity.share_granule

let granule_of_addr addr = addr lsr granule_shift

(* One-in-2^30 resolution keep threshold: [selected] holds when a
   SplitMix-style fixed-point hash of the id lands under
   [rate * 2^30].  [rate = 1.0] gives threshold 2^30, above every
   30-bit hash value, so everything is selected. *)
let resolution = 1 lsl 30

let threshold_of_rate rate = int_of_float (ceil (rate *. float_of_int resolution))

let mix ~seed x =
  let h = (x lxor seed) * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  let h = h * 0x1B873593 in
  let h = h lxor (h lsr 32) in
  h land (resolution - 1)

let selected ~rate ~seed id = mix ~seed id < threshold_of_rate rate

(* ------------------------------------------------------------------ *)
(* Shared batched fast path: filter access rows through [keep] into a
   reused batch (offsets preserved) and hand it to the inner detector.
   Non-access rows are always copied — clocks must stay exact — and
   stream statistics are counted here exactly as the per-event
   wrappers count them, so both paths produce the same stats.

   Recycling-safe (batch.mli): the input batch may come from a
   {!Dgrace_trace.Batch_ring} and is invalid once this callback
   returns, so every surviving row is copied into the sampler-owned
   [out] buffer and [out] is flushed to the inner detector before the
   callback returns — no reference to [b] or its arrays escapes. *)

let filtering_batch ~(inner : Detector.t) ~(stats : Run_stats.t) ~analysed
    ~skipped ~keep =
  let out = Batch.create () in
  let flush () =
    if Batch.length out > 0 then begin
      (match inner.Detector.process_batch with
       | Some pb -> pb out
       | None ->
         for i = 0 to Batch.length out - 1 do
           Report.Collector.set_tag inner.Detector.collector out.Batch.off.(i);
           inner.Detector.on_event (Batch.event out i)
         done);
      Batch.clear out
    end
  in
  let copy (b : Batch.t) i =
    if Batch.is_full out then flush ();
    let j = out.Batch.len in
    out.Batch.kind.(j) <- b.Batch.kind.(i);
    out.Batch.a.(j) <- b.Batch.a.(i);
    out.Batch.b.(j) <- b.Batch.b.(i);
    out.Batch.c.(j) <- b.Batch.c.(i);
    out.Batch.loc.(j) <- b.Batch.loc.(i);
    out.Batch.off.(j) <- b.Batch.off.(i);
    out.Batch.len <- j + 1
  in
  fun (b : Batch.t) ->
    let n = Batch.length b in
    for i = 0 to n - 1 do
      let k = Array.unsafe_get b.Batch.kind i in
      if k <= Batch.code_write then begin
        stats.accesses <- stats.accesses + 1;
        if k = Batch.code_write then stats.writes <- stats.writes + 1
        else stats.reads <- stats.reads + 1;
        if keep b i then begin
          Metrics.incr analysed;
          copy b i
        end
        else Metrics.incr skipped
      end
      else begin
        if k = Batch.code_alloc then stats.allocs <- stats.allocs + 1
        else if k = Batch.code_free then stats.frees <- stats.frees + 1
        else stats.sync_ops <- stats.sync_ops + 1;
        copy b i
      end
    done;
    flush ()

(* ------------------------------------------------------------------ *)

type state = {
  mode : mode;
  threshold : int;
  seed : int;
  inner : Detector.t;
  stats : Run_stats.t;
  analysed : Metrics.counter;
  skipped : Metrics.counter;
  mutable seen : int;  (* access index, the Access-mode coin input *)
}

let keep_access st ~addr ~size =
  match st.mode with
  | Granule ->
    let g0 = addr lsr granule_shift in
    let g1 = (addr + size - 1) lsr granule_shift in
    mix ~seed:st.seed g0 < st.threshold
    || (g1 <> g0 && mix ~seed:st.seed g1 < st.threshold)
  | Access ->
    let i = st.seen in
    st.seen <- i + 1;
    mix ~seed:st.seed i < st.threshold

let create ?(mode = Granule) ?(rate = 0.1) ?(seed = default_seed) ?name ~inner
    () =
  if not (rate > 0. && rate <= 1.) then
    invalid_arg "Race_sampler.create: rate must be in (0, 1]";
  let st =
    {
      mode;
      threshold = threshold_of_rate rate;
      seed;
      inner;
      stats = Run_stats.create ();
      analysed = Metrics.counter inner.Detector.metrics "sampling.analysed";
      skipped = Metrics.counter inner.Detector.metrics "sampling.skipped";
      seen = 0;
    }
  in
  Metrics.set
    (Metrics.gauge inner.Detector.metrics "sampling.rate_ppm")
    (int_of_float (rate *. 1e6));
  let on_event ev =
    match ev with
    | Event.Access { kind; addr; size; _ } ->
      st.stats.accesses <- st.stats.accesses + 1;
      if kind = Event.Write then st.stats.writes <- st.stats.writes + 1
      else st.stats.reads <- st.stats.reads + 1;
      if keep_access st ~addr ~size then begin
        Metrics.incr st.analysed;
        st.inner.on_event ev
      end
      else Metrics.incr st.skipped
    | Event.Acquire _ | Event.Release _ | Event.Fork _ | Event.Join _
    | Event.Thread_exit _ ->
      st.stats.sync_ops <- st.stats.sync_ops + 1;
      st.inner.on_event ev
    | Event.Alloc _ ->
      st.stats.allocs <- st.stats.allocs + 1;
      st.inner.on_event ev
    | Event.Free _ ->
      st.stats.frees <- st.stats.frees + 1;
      st.inner.on_event ev
  in
  let process_batch =
    filtering_batch ~inner ~stats:st.stats ~analysed:st.analysed
      ~skipped:st.skipped ~keep:(fun b i ->
        keep_access st ~addr:b.Batch.b.(i) ~size:b.Batch.c.(i))
  in
  let finish () =
    let a = Metrics.value st.analysed and s = Metrics.value st.skipped in
    if a + s > 0 then
      Metrics.set
        (Metrics.gauge inner.Detector.metrics "sampling.fraction_ppm")
        (int_of_float (float_of_int a *. 1e6 /. float_of_int (a + s)));
    st.inner.finish ()
  in
  let name =
    match name with
    | Some n -> n
    | None ->
      Printf.sprintf "%s:%g"
        (match mode with Granule -> "sample-granule" | Access -> "sample")
        rate
  in
  {
    Detector.name;
    on_event;
    process_batch = Some process_batch;
    finish;
    collector = inner.collector;
    account = inner.account;
    stats = st.stats;
    metrics = inner.metrics;
    transitions = inner.transitions;
    degrade = inner.degrade;
  }
