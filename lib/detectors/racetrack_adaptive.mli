(** RaceTrack-style adaptive granularity (Yu, Rodeheffer & Chen, SOSP
    2005), the {e other} adaptive scheme discussed in the paper's §VI.

    RaceTrack starts detection at a coarse unit (an object) and refines
    to field granularity only when a potential race is detected, then
    reports only if the race recurs at the fine granularity.  The paper
    argues the idea "based on object references, is not applicable to
    C/C++ programs"; this detector maps it to addresses anyway — coarse
    regions of [region] bytes refined to access footprints on a
    potential race — precisely so the trade-off can be measured:

    - memory starts low (one clock per region);
    - a {e recurring} race is confirmed at fine granularity and
      reported;
    - a {e one-shot} race only triggers the refinement and is lost —
      the miss the paper's dynamic-granularity design avoids by going
      fine-to-coarse instead of coarse-to-fine.

    The hmmsearch workload (single final unprotected update) is the
    built-in demonstration: every happens-before detector in the suite
    finds its race, this one does not. *)

open Dgrace_events

val create :
  ?region:int ->
  ?suppression:Suppression.t ->
  ?vc_intern:bool ->
  unit ->
  Detector.t
(** [region] is the coarse detection unit in bytes (default 64; power
    of two).  [~vc_intern:false] disables snapshot hash-consing. *)
