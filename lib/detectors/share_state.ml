type t = Init_private | Init_shared | Shared | Private | Race

type stimulus =
  | First_access of { matching_init_neighbor : bool }
  | Init_neighbor_matched
  | Second_epoch_access of { matching_settled_neighbor : bool }
  | Adopted_by_neighbor
  | Race_on_l
  | Sharing_dissolved

let initial ~matching_init_neighbor =
  if matching_init_neighbor then Init_shared else Init_private

let step s x =
  match (s, x) with
  (* the First_access stimulus is only meaningful for a fresh location *)
  | _, First_access { matching_init_neighbor } ->
    Some (initial ~matching_init_neighbor)
  | (Init_private | Init_shared), Init_neighbor_matched -> Some Init_shared
  | (Init_private | Init_shared), Second_epoch_access { matching_settled_neighbor }
    ->
    Some (if matching_settled_neighbor then Shared else Private)
  | Private, Adopted_by_neighbor -> Some Shared
  | Shared, Adopted_by_neighbor -> Some Shared
  | _, Race_on_l -> Some Race
  | (Shared | Init_shared), Sharing_dissolved -> Some Race
  | Race, (Init_neighbor_matched | Second_epoch_access _ | Adopted_by_neighbor) ->
    Some Race
  | (Shared | Private), (Init_neighbor_matched | Second_epoch_access _) -> None
  | (Init_private | Init_shared), Adopted_by_neighbor -> None
  | (Private | Init_private), Sharing_dissolved -> None
  | Race, Sharing_dissolved -> Some Race

let is_init = function Init_private | Init_shared -> true | _ -> false
let is_settled = function Shared | Private -> true | _ -> false
let equal (a : t) b = a = b

let pp ppf s =
  Format.pp_print_string ppf
    (match s with
     | Init_private -> "1st-epoch-private"
     | Init_shared -> "1st-epoch-shared"
     | Shared -> "shared"
     | Private -> "private"
     | Race -> "race")

let to_string s = Format.asprintf "%a" pp s

let index = function
  | Init_private -> 0
  | Init_shared -> 1
  | Private -> 2
  | Shared -> 3
  | Race -> 4

let n_states = 5

let names =
  [| "1st-epoch-private"; "1st-epoch-shared"; "private"; "shared"; "race" |]
