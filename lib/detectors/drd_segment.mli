(** Segment-based happens-before detection in the style of Valgrind DRD
    / RecPlay (the paper's first happens-before method, §I, and the
    Table 6 comparison baseline).

    A {e segment} is the code between two successive synchronisation
    operations of one thread; it carries the thread's vector clock and
    bitsets of the addresses read and written.  Two accesses race when
    their segments are concurrent (neither clock [<=] the other) and
    the address sets overlap with at least one write.  No per-address
    vector clock is kept — which is why DRD uses {e less memory} than
    FastTrack but pays {e set operations per access} and is slower, the
    trade-off Table 6 shows.

    Finished segments are garbage-collected once their clock is ordered
    before every live thread (they can no longer be concurrent with any
    future access). *)

open Dgrace_events

val create :
  ?granularity:int ->
  ?suppression:Suppression.t ->
  ?vc_intern:bool ->
  unit ->
  Detector.t
(** Granularity defaults to 4 bytes, DRD's natural word tracking.
    [~vc_intern:false] disables hash-consing of the per-segment clock
    snapshots. *)
