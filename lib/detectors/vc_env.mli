(** Thread and lock vector-clock state shared by all happens-before
    detectors (DJIT+, FastTrack at any granularity, the dynamic
    detector, and the segment-based DRD detector).

    A thread's execution is a sequence of epochs; the thread's own
    component of its clock is incremented at every epoch boundary
    (lock release, fork, thread exit), and clocks flow between threads
    through lock objects and fork/join edges exactly as in §II of the
    paper. *)

open Dgrace_vclock
open Dgrace_events

type t

val create : unit -> t

val clock_of : t -> int -> Vector_clock.t
(** The (mutable, live) clock of a thread; created on first use with
    the thread's own component set to 1. *)

val epoch_of : t -> int -> Epoch.t
(** [E(t) = C_t(t)@t], the thread's current epoch. *)

val thread_count : t -> int
(** Number of distinct thread ids seen. *)

val acquire : t -> tid:int -> lock:int -> unit
(** [C_t := C_t ⊔ L]. *)

val release : t -> tid:int -> lock:int -> unit
(** [L := L ⊔ C_t; C_t(t) += 1] — starts a new epoch for [t]. *)

val fork : t -> parent:int -> child:int -> unit
(** [C_child := C_child ⊔ C_parent; C_parent(parent) += 1]. *)

val join : t -> parent:int -> child:int -> unit
(** [C_parent := C_parent ⊔ C_child]. *)

val handle : t -> Event.t -> on_boundary:(int -> unit) -> bool
(** Dispatch a synchronisation event ([Acquire], [Release], [Fork],
    [Join], [Thread_exit]); returns [false] for events this module does
    not handle (accesses, alloc/free).  [on_boundary tid] is invoked
    whenever thread [tid] enters a new epoch, so the detector can reset
    that thread's same-epoch bitmap. *)

val handle_coded :
  t -> kind:int -> a:int -> b:int -> on_boundary:(int -> unit) -> bool
(** {!handle} driven off a {!Batch.t} row's kind code and a/b columns
    (tid/lock or parent/child) without building an [Event.t] — the
    batched fast path's shape.  Returns [false] for non-sync codes. *)

val lock_vc_bytes : t -> int
(** Footprint of the lock clocks (they are part of detector memory but
    identical across granularities, so the paper folds them into the
    vector-clock column; we expose them separately for completeness). *)
