(** FastTrack with a fixed detection granularity (paper §II.C, §IV).

    Every granule of [granularity] bytes (1 for the byte detector, 4
    for the word detector) carries a shadow cell with a write epoch and
    an adaptive read state.  Accesses are masked to granule boundaries,
    which is why the word detector can merge distinct sub-word races
    into one and occasionally misreport (§V.A's x264 / ffmpeg
    discussion).  The same-epoch fast path uses per-thread bitmaps
    reset at each epoch boundary (§IV.A). *)

open Dgrace_events

val create :
  ?granularity:int ->
  ?suppression:Suppression.t ->
  ?vc_intern:bool ->
  ?page_cluster:bool ->
  ?tracer:Dgrace_obs.Span.buf ->
  unit ->
  Detector.t
(** [create ~granularity ()] — granularity defaults to 1 (byte).  Must
    be a power of two.  [~vc_intern:false] disables hash-consing of
    read-shared snapshots (legacy deep-copy memory behaviour).
    [~page_cluster:false] disables page-clustered batch application
    (only effective for granularities <= 4096, where no shadow cell
    spans a page; see {!Dynamic_granularity.create}).  [~tracer:buf]
    registers sampled [phase.*] timers on the tracing lane, as in
    {!Dynamic_granularity.create}. *)
