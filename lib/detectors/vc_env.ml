open Dgrace_vclock
open Dgrace_events
module Vec = Dgrace_util.Vec

type t = {
  threads : Vector_clock.t option Vec.t;  (* indexed by tid *)
  locks : (int, Vector_clock.t) Hashtbl.t;
}

let create () = { threads = Vec.create (); locks = Hashtbl.create 64 }

let clock_of t tid =
  while Vec.length t.threads <= tid do
    Vec.push t.threads None
  done;
  match Vec.get t.threads tid with
  | Some vc -> vc
  | None ->
    let vc = Vector_clock.create () in
    Vector_clock.set vc tid 1;
    Vec.set t.threads tid (Some vc);
    vc

let epoch_of t tid =
  let vc = clock_of t tid in
  Epoch.make ~tid ~clock:(Vector_clock.get vc tid)

let thread_count t = Vec.length t.threads

let lock_vc t lock =
  match Hashtbl.find_opt t.locks lock with
  | Some vc -> vc
  | None ->
    let vc = Vector_clock.create () in
    Hashtbl.replace t.locks lock vc;
    vc

let acquire t ~tid ~lock = Vector_clock.join (clock_of t tid) (lock_vc t lock)

let release t ~tid ~lock =
  let c = clock_of t tid in
  Vector_clock.join (lock_vc t lock) c;
  Vector_clock.tick c tid

let fork t ~parent ~child =
  Vector_clock.join (clock_of t child) (clock_of t parent);
  Vector_clock.tick (clock_of t parent) parent

let join t ~parent ~child =
  Vector_clock.join (clock_of t parent) (clock_of t child)

let handle t ev ~on_boundary =
  match ev with
  | Event.Acquire { tid; lock; sync = _ } ->
    acquire t ~tid ~lock;
    true
  | Event.Release { tid; lock; sync = _ } ->
    release t ~tid ~lock;
    on_boundary tid;
    true
  | Event.Fork { parent; child } ->
    fork t ~parent ~child;
    on_boundary parent;
    true
  | Event.Join { parent; child } ->
    join t ~parent ~child;
    true
  | Event.Thread_exit { tid } ->
    (* final epoch boundary so a subsequent join sees a settled clock *)
    Vector_clock.tick (clock_of t tid) tid;
    on_boundary tid;
    true
  | Event.Access _ | Event.Alloc _ | Event.Free _ -> false

(* Kind-coded dispatch for the batched fast path: the same transitions
   as [handle] driven straight off a {!Batch.t} row's columns, so sync
   rows never materialise an [Event.t]. *)
let handle_coded t ~kind ~a ~b ~on_boundary =
  if kind = Batch.code_acquire then begin
    acquire t ~tid:a ~lock:b;
    true
  end
  else if kind = Batch.code_release then begin
    release t ~tid:a ~lock:b;
    on_boundary a;
    true
  end
  else if kind = Batch.code_fork then begin
    fork t ~parent:a ~child:b;
    on_boundary a;
    true
  end
  else if kind = Batch.code_join then begin
    join t ~parent:a ~child:b;
    true
  end
  else if kind = Batch.code_exit then begin
    Vector_clock.tick (clock_of t a) a;
    on_boundary a;
    true
  end
  else false

let lock_vc_bytes t =
  Hashtbl.fold (fun _ vc acc -> acc + (8 * Vector_clock.heap_words vc)) t.locks 0
