open Dgrace_vclock
open Dgrace_events
open Dgrace_shadow
module Vec = Dgrace_util.Vec

(* Per-segment address sets, one bit per granule in chunked bitmaps —
   the compressed representation that keeps DRD's memory {e below} the
   per-address-clock detectors (the paper's Table 6 trade-off: set
   operations per access, but no vector clock per location). *)
module Gset = struct
  let chunk_addrs = 1024  (* address bytes covered per chunk *)

  type t = {
    g : int;  (* granularity in bytes *)
    chunks : (int, Bytes.t) Hashtbl.t;
    mutable card : int;  (* bits set *)
    mutable nbytes : int;  (* storage for accounting *)
  }

  let create g = { g; chunks = Hashtbl.create 8; card = 0; nbytes = 0 }
  let chunk_bytes t = chunk_addrs / t.g / 8

  let locate t addr =
    let base = addr land lnot (chunk_addrs - 1) in
    let bit = (addr - base) / t.g in
    (base, bit lsr 3, bit land 7)

  let mem t addr =
    let base, i, b = locate t addr in
    match Hashtbl.find_opt t.chunks base with
    | None -> false
    | Some c -> Char.code (Bytes.get c i) land (1 lsl b) <> 0

  (* returns true when the bit was newly set *)
  let add t addr =
    let base, i, b = locate t addr in
    let c =
      match Hashtbl.find_opt t.chunks base with
      | Some c -> c
      | None ->
        let c = Bytes.make (chunk_bytes t) '\000' in
        Hashtbl.replace t.chunks base c;
        t.nbytes <- t.nbytes + chunk_bytes t + 16;
        c
    in
    let old = Char.code (Bytes.get c i) in
    if old land (1 lsl b) <> 0 then false
    else begin
      Bytes.set c i (Char.chr (old lor (1 lsl b)));
      t.card <- t.card + 1;
      true
    end

  let clear_range t ~lo ~hi =
    let a = ref (lo land lnot (t.g - 1)) in
    while !a < hi do
      let base, i, b = locate t !a in
      match Hashtbl.find_opt t.chunks base with
      | None -> a := base + chunk_addrs  (* skip the whole absent chunk *)
      | Some c ->
        let old = Char.code (Bytes.get c i) in
        if old land (1 lsl b) <> 0 then begin
          Bytes.set c i (Char.chr (old land lnot (1 lsl b)));
          t.card <- t.card - 1
        end;
        a := !a + t.g
    done

  let card t = t.card
  let bytes t = t.nbytes
end

type segment = {
  sid : int;
  stid : int;
  svc : Vc_intern.snap;  (* interned clock snapshot at segment start *)
  reads : Gset.t;
  writes : Gset.t;
  chunkset : (int, unit) Hashtbl.t;  (* address chunks this segment touches *)
  mutable last_loc : string;
  (* concurrency test memoised against the current segment it was last
     compared with *)
  mutable cache_sid : int;
  mutable cache_concurrent : bool;
}

let seg_base_bytes = 8 * 14

type state = {
  granularity : int;
  intern : Vc_intern.t;
  env : Vc_env.t;
  mutable next_sid : int;
  current : segment option Vec.t;  (* per thread *)
  mutable finished : segment list;
  exited : (int, unit) Hashtbl.t;
  racy : (int, unit) Hashtbl.t;  (* granules already reported *)
  index : (int, segment Vec.t) Hashtbl.t;
      (* address chunk -> segments touching it; the per-address danger
         structure that keeps conflict checks from scanning every live
         segment *)
  mutable closes : int;
  account : Accounting.t;
  stats : Run_stats.t;
  collector : Report.Collector.t;
}

let seg_set_bytes s = Gset.bytes s.reads + Gset.bytes s.writes

let current_of st tid =
  while Vec.length st.current <= tid do
    Vec.push st.current None
  done;
  match Vec.get st.current tid with
  | Some s -> s
  | None ->
    let s =
      {
        sid = st.next_sid;
        stid = tid;
        (* segments of different threads with equal start clocks — and
           successive segments of one thread between syncs — share one
           snapshot; the arena accounts the bytes *)
        svc = Vc_intern.intern st.intern (Vc_env.clock_of st.env tid);
        reads = Gset.create st.granularity;
        writes = Gset.create st.granularity;
        chunkset = Hashtbl.create 8;
        last_loc = "";
        cache_sid = -1;
        cache_concurrent = false;
      }
    in
    st.next_sid <- st.next_sid + 1;
    Accounting.vc_created st.account;
    Accounting.add_hash st.account seg_base_bytes;
    Vec.set st.current tid (Some s);
    s

let index_add st seg chunk =
  if not (Hashtbl.mem seg.chunkset chunk) then begin
    Hashtbl.replace seg.chunkset chunk ();
    let v =
      match Hashtbl.find_opt st.index chunk with
      | Some v -> v
      | None ->
        let v = Vec.create () in
        Hashtbl.replace st.index chunk v;
        v
    in
    Vec.push v seg
  end

let rebuild_index st =
  Hashtbl.reset st.index;
  let readd seg =
    Hashtbl.iter
      (fun chunk () ->
        let v =
          match Hashtbl.find_opt st.index chunk with
          | Some v -> v
          | None ->
            let v = Vec.create () in
            Hashtbl.replace st.index chunk v;
            v
        in
        Vec.push v seg)
      seg.chunkset
  in
  Vec.iter (function Some s -> readd s | None -> ()) st.current;
  List.iter readd st.finished

let retire_segment st s =
  Accounting.vc_freed st.account;
  Vc_intern.release s.svc;
  Accounting.add_hash st.account (-(seg_base_bytes + seg_set_bytes s))

(* Drop finished segments that are ordered before every live thread:
   nothing in the future can be concurrent with them. *)
let sweep st =
  let live = ref [] in
  for tid = 0 to Vc_env.thread_count st.env - 1 do
    if not (Hashtbl.mem st.exited tid) then
      live := (tid, Vc_env.clock_of st.env tid) :: !live
  done;
  let keep s =
    List.exists
      (fun (tid, vc) -> tid <> s.stid && not (Vc_intern.leq_clock s.svc vc))
      !live
  in
  let kept, dropped = List.partition keep st.finished in
  List.iter (retire_segment st) dropped;
  st.finished <- kept;
  if dropped <> [] then rebuild_index st

let close_segment st tid =
  if tid < Vec.length st.current then
    match Vec.get st.current tid with
    | None -> ()
    | Some s ->
      Vec.set st.current tid None;
      if Gset.card s.reads = 0 && Gset.card s.writes = 0 then
        retire_segment st s
      else begin
        st.finished <- s :: st.finished;
        st.closes <- st.closes + 1;
        if st.closes land 15 = 0 then sweep st
      end

let concurrent_with cur other =
  if other.cache_sid = cur.sid then other.cache_concurrent
  else begin
    let c =
      (not (Vc_intern.leq other.svc cur.svc))
      && not (Vc_intern.leq cur.svc other.svc)
    in
    other.cache_sid <- cur.sid;
    other.cache_concurrent <- c;
    c
  end

let conflict ~write other a =
  if write then Gset.mem other.writes a || Gset.mem other.reads a
  else Gset.mem other.writes a

let on_access st ~tid ~kind ~addr ~size ~loc =
  st.stats.accesses <- st.stats.accesses + 1;
  let write = kind = Event.Write in
  if write then st.stats.writes <- st.stats.writes + 1
  else st.stats.reads <- st.stats.reads + 1;
  let seg = current_of st tid in
  seg.last_loc <- loc;
  let g = st.granularity in
  let lo = addr land lnot (g - 1) in
  let hi = (addr + size + g - 1) land lnot (g - 1) in
  let a = ref lo in
  while !a < hi do
    let granule = !a in
    let own = if write then seg.writes else seg.reads in
    let bytes_before = Gset.bytes own in
    if not (Gset.add own granule) then
      (* already recorded in this segment: nothing new can conflict *)
      st.stats.same_epoch <- st.stats.same_epoch + 1
    else begin
      let grown = Gset.bytes own - bytes_before in
      if grown <> 0 then Accounting.add_hash st.account grown;
      index_add st seg (granule land lnot (Gset.chunk_addrs - 1));
      if not (Hashtbl.mem st.racy granule) then begin
        let check other =
          if
            other.stid <> tid
            && conflict ~write other granule
            && concurrent_with seg other
          then begin
            Hashtbl.replace st.racy granule ();
            let current : Report.endpoint =
              { tid; kind; clock = Vc_intern.get seg.svc tid; loc }
            in
            let previous : Report.endpoint =
              {
                tid = other.stid;
                kind =
                  (if Gset.mem other.writes granule then Event.Write
                   else Event.Read);
                clock = Vc_intern.get other.svc other.stid;
                loc = other.last_loc;
              }
            in
            let r =
              Report.make ~addr:granule ~size:g ~current ~previous
                ~granule:(granule, granule + g) ()
            in
            ignore (Report.Collector.add st.collector r : bool);
            true
          end
          else false
        in
        (match Hashtbl.find_opt st.index (granule land lnot (Gset.chunk_addrs - 1)) with
         | None -> ()
         | Some candidates -> ignore (Vec.exists check candidates : bool))
      end
    end;
    a := !a + g
  done

(* free(): purge the range from every live segment so a recycled
   address can never conflict with accesses to the old allocation. *)
let on_free st ~addr ~size =
  st.stats.frees <- st.stats.frees + 1;
  let purge s =
    Gset.clear_range s.reads ~lo:addr ~hi:(addr + size);
    Gset.clear_range s.writes ~lo:addr ~hi:(addr + size)
  in
  Vec.iter (function Some s -> purge s | None -> ()) st.current;
  List.iter purge st.finished

let create ?(granularity = 4) ?(suppression = Suppression.empty)
    ?(vc_intern = true) () =
  if granularity <= 0 || granularity land (granularity - 1) <> 0 then
    invalid_arg "Drd_segment.create: granularity must be a power of two";
  let account = Accounting.create () in
  let intern =
    Vc_intern.create ~hash_consing:vc_intern
      ~on_bytes:(fun d ->
        Accounting.add_vc account d;
        Accounting.add_interned account d)
      ()
  in
  let st =
    {
      granularity;
      intern;
      env = Vc_env.create ();
      next_sid = 0;
      current = Vec.create ();
      finished = [];
      exited = Hashtbl.create 16;
      racy = Hashtbl.create 64;
      index = Hashtbl.create 64;
      closes = 0;
      account;
      stats = Run_stats.create ();
      collector = Report.Collector.create ~suppression ();
    }
  in
  let on_event ev =
    match ev with
    | Event.Access { tid; kind; addr; size; loc } ->
      on_access st ~tid ~kind ~addr ~size ~loc
    | Event.Acquire { tid; lock; sync = _ } ->
      st.stats.sync_ops <- st.stats.sync_ops + 1;
      close_segment st tid;
      Vc_env.acquire st.env ~tid ~lock
    | Event.Release { tid; lock; sync = _ } ->
      st.stats.sync_ops <- st.stats.sync_ops + 1;
      close_segment st tid;
      Vc_env.release st.env ~tid ~lock
    | Event.Fork { parent; child } ->
      st.stats.sync_ops <- st.stats.sync_ops + 1;
      close_segment st parent;
      Vc_env.fork st.env ~parent ~child
    | Event.Join { parent; child } ->
      st.stats.sync_ops <- st.stats.sync_ops + 1;
      close_segment st parent;
      Vc_env.join st.env ~parent ~child
    | Event.Thread_exit { tid } ->
      st.stats.sync_ops <- st.stats.sync_ops + 1;
      close_segment st tid;
      Hashtbl.replace st.exited tid ();
      Vector_clock.tick (Vc_env.clock_of st.env tid) tid
    | Event.Alloc _ -> st.stats.allocs <- st.stats.allocs + 1
    | Event.Free { addr; size; _ } -> on_free st ~addr ~size
  in
  let metrics = Dgrace_obs.Metrics.create () in
  {
    Detector.name = "drd-segment";
    on_event;
    process_batch = None;
    finish =
      (fun () ->
        sweep st;
        Vclock_obs.publish metrics st.intern);
    collector = st.collector;
    account = st.account;
    stats = st.stats;
    metrics;
    transitions = None;
    degrade = None;
  }
